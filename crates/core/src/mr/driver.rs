//! The MapReduce G-means driver (Algorithm 1).
//!
//! ```text
//! PickInitialCenters
//! while Not ClusteringCompleted do
//!     KMeans
//!     KMeansAndFindNewCenters
//!     TestClusters        (or TestFewClusters — §3.2 strategy switch)
//! end while
//! ```
//!
//! The driver orchestrates the per-iteration bookkeeping the paper calls
//! out as the implementation's subtlety: each iteration juggles centers
//! from the **previous** iteration (the cluster memberships points are
//! tested under), the **current** iteration (the children pairs k-means
//! refines and the test projects onto) and the **next** iteration (the
//! candidate pairs `KMeansAndFindNewCenters` picks).
//!
//! Clusters whose projections pass the Anderson–Darling test keep their
//! center and stop splitting; the rest are replaced by their two
//! children. Because *all* clusters split in parallel, k roughly doubles
//! per iteration and the final count overestimates `k_real` by the
//! paper's ≈1.5× (Table 1); [`crate::merge`] implements the
//! post-processing the paper leaves as future work.
//!
//! The driver is a [`GMeansAlgo`] state machine on the generic
//! [`Engine`]: each G-means iteration is one engine segment of several
//! job waves (k-means refinements, the fused find-new-centers job, the
//! split test, an optional reducer-side retry), checkpointed at the
//! iteration boundary. Crash recovery, fault degradation, counters and
//! clocks are the engine's; the state machine only decides what job
//! comes next and how its outputs fold into the cluster hierarchy.

use std::collections::HashMap;
use std::sync::Arc;

use gmr_linalg::{Dataset, SegmentProjector};
use gmr_mapreduce::counters::Counters;
use gmr_mapreduce::writable::Writable;
use gmr_mapreduce::{Error, Result};

use crate::config::GMeansConfig;
use crate::mr::bic_test::{BicTestJob, BicTestSpec};
use crate::mr::centers::{apply_updates, CenterSet, CenterUpdate};
use crate::mr::engine::{
    Engine, EngineCtx, ExecutionMode, IterativeAlgorithm, JobOutputs, PlannedJob, RunStats,
    SegmentStats, Step,
};
use crate::mr::find_new_centers::{FindNewCentersJob, FindNewOutput};
use crate::mr::kmeans_job::KMeansJob;
use crate::mr::split_test::{
    SplitTestSpec, TestClustersJob, TestDecision, TestFewClustersJob, TestOutcome,
};
use crate::mr::strategy::{choose_strategy, TestStrategy};
use gmr_mapreduce::runtime::JobRunner;

/// A candidate next-iteration center.
#[derive(Clone, Debug)]
struct Child {
    id: i64,
    coords: Vec<f64>,
}

/// One cluster of the hierarchy.
#[derive(Clone, Debug)]
struct Parent {
    id: i64,
    center: Vec<f64>,
    found: bool,
    count: u64,
    /// Consecutive keep-verdicts (used by the BIC criterion, which —
    /// like serial X-means — retries a cluster with fresh candidate
    /// children before accepting it).
    normal_streak: u8,
    /// The two current-iteration centers being refined (empty once
    /// found).
    children: Vec<Child>,
}

/// Per-iteration diagnostics.
#[derive(Clone, Debug)]
pub struct IterationReport {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Clusters (parents) at the start of the iteration.
    pub clusters_before: usize,
    /// Clusters actually tested (had a valid split vector).
    pub clusters_tested: usize,
    /// Clusters split this iteration.
    pub splits: usize,
    /// Clusters accepted (found) so far, after the iteration.
    pub found_after: usize,
    /// Total clusters after the iteration.
    pub clusters_after: usize,
    /// Strategy used for the split test, when one ran.
    pub strategy: Option<TestStrategy>,
    /// Simulated seconds of this iteration's jobs.
    pub simulated_secs: f64,
    /// MapReduce jobs launched this iteration.
    pub jobs: usize,
    /// Cluster centers after the iteration (found parents' centers and
    /// unfound parents' children), for trajectory plots like Figure 1.
    pub centers_after: Dataset,
    /// Why the iteration failed, when a job of it exhausted its task
    /// attempts; `None` for iterations that completed.
    pub error: Option<String>,
}

/// Result of a MapReduce G-means run.
#[derive(Debug)]
pub struct MRGMeansResult {
    /// Discovered centers.
    pub centers: Dataset,
    /// Points per discovered center (from the last k-means pass).
    pub counts: Vec<u64>,
    /// G-means iterations performed.
    pub iterations: usize,
    /// Per-iteration diagnostics.
    pub reports: Vec<IterationReport>,
    /// Total simulated time (sum of job makespans, incl. job setup and
    /// checkpoint commits).
    pub simulated_secs: f64,
    /// Real wall-clock of the whole run.
    pub wall_secs: f64,
    /// Counters accumulated over every job.
    pub counters: Counters,
    /// Dataset reads consumed (jobs + the initial serial sample).
    pub dataset_reads: u64,
    /// Total MapReduce jobs launched.
    pub jobs: usize,
    /// The task failure that ended the run early, if any. The result
    /// then holds the centers of the last completed iteration, with
    /// still-splitting clusters accepted as-is; counters and timings
    /// cover every *successful* job.
    pub failure: Option<Error>,
}

impl MRGMeansResult {
    /// The discovered number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }
}

/// Which statistical criterion decides whether a cluster splits.
///
/// The driver, jobs, bookkeeping and strategy machinery are shared;
/// only the per-cluster decision differs — exactly the G-means/X-means
/// relationship §2 describes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Anderson–Darling normality of the child-axis projections
    /// (G-means — the paper's contribution).
    #[default]
    AndersonDarling,
    /// Bayesian Information Criterion comparison of the one-center vs
    /// two-children models (X-means, Pelleg & Moore).
    Bic,
}

/// Where inside one G-means iteration the state machine stands: which
/// job wave [`GMeansAlgo::plan`] emits next.
enum GPhase {
    /// `remaining` plain k-means refinement waves left before the fused
    /// job.
    Refine { remaining: usize },
    /// The fused `KMeansAndFindNewCenters` wave.
    FindNew,
    /// The split-test wave (BIC aggregation, or the §3.2
    /// strategy-chosen Anderson–Darling job).
    Test,
    /// Reducer-side re-test of clusters the mapper-side job left
    /// undecided.
    Retry,
}

/// Intra-iteration scratch: everything the iteration accumulates
/// between its job waves. Deliberately *not* checkpointed — a resume
/// replays the interrupted iteration from its boundary snapshot and
/// re-derives identical scratch.
struct IterScratch {
    phase: GPhase,
    clusters_before: usize,
    /// Centers being refined this iteration (children of splitting
    /// parents + centers of found ones).
    current: CenterSet,
    kmeans_reducers: usize,
    /// Post-refinement per-center point counts.
    counts: HashMap<i64, u64>,
    /// Candidate next-iteration centers per current center.
    candidates: HashMap<i64, Vec<Vec<f64>>>,
    /// Split vectors per parent index (`None` = not testable).
    projectors: Vec<Option<SegmentProjector>>,
    /// Child coordinate pairs per parent index (the BIC test's input).
    child_pairs: Vec<Option<(Vec<f64>, Vec<f64>)>>,
    /// Parent indices settled without a job (empty half / too small /
    /// degenerate axis).
    auto_normal: Vec<usize>,
    clusters_tested: usize,
    decisions: HashMap<i64, TestOutcome>,
    strategy_used: Option<TestStrategy>,
    /// Ids the mapper-side test left undecided (feeds the retry wave).
    undecided: Vec<i64>,
}

/// The G-means driver's complete loop state at an iteration boundary.
pub struct GState {
    dim: usize,
    next_id: i64,
    iteration: usize,
    parents: Vec<Parent>,
    reports: Vec<IterationReport>,
    /// In-flight iteration scratch; `None` at boundaries.
    scratch: Option<IterScratch>,
}

/// Journal wire form of [`GState`] (run totals travel in the engine's
/// frame, not here; scratch is re-derived by replaying the iteration).
pub struct GMeansSnapshot {
    dim: u32,
    next_id: i64,
    iteration: u64,
    parents: Vec<ParentSnap>,
    reports: Vec<ReportSnap>,
}

impl Writable for GMeansSnapshot {
    fn write(&self, buf: &mut Vec<u8>) {
        self.dim.write(buf);
        self.next_id.write(buf);
        self.iteration.write(buf);
        self.parents.write(buf);
        self.reports.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            dim: u32::read(buf)?,
            next_id: i64::read(buf)?,
            iteration: u64::read(buf)?,
            parents: Vec::read(buf)?,
            reports: Vec::read(buf)?,
        })
    }
}

/// Wire form of a [`Child`].
struct ChildSnap {
    id: i64,
    coords: Vec<f64>,
}

impl Writable for ChildSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.id.write(buf);
        self.coords.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            id: i64::read(buf)?,
            coords: Vec::read(buf)?,
        })
    }
}

/// Wire form of a [`Parent`].
struct ParentSnap {
    id: i64,
    center: Vec<f64>,
    found: bool,
    count: u64,
    normal_streak: u8,
    children: Vec<ChildSnap>,
}

impl Writable for ParentSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.id.write(buf);
        self.center.write(buf);
        self.found.write(buf);
        self.count.write(buf);
        self.normal_streak.write(buf);
        self.children.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            id: i64::read(buf)?,
            center: Vec::read(buf)?,
            found: bool::read(buf)?,
            count: u64::read(buf)?,
            normal_streak: u8::read(buf)?,
            children: Vec::read(buf)?,
        })
    }
}

/// Wire form of an [`IterationReport`].
struct ReportSnap {
    iteration: u64,
    clusters_before: u64,
    clusters_tested: u64,
    splits: u64,
    found_after: u64,
    clusters_after: u64,
    strategy: Option<u8>,
    simulated_secs: f64,
    jobs: u64,
    dim: u32,
    centers_flat: Vec<f64>,
    error: Option<String>,
}

impl Writable for ReportSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.iteration.write(buf);
        self.clusters_before.write(buf);
        self.clusters_tested.write(buf);
        self.splits.write(buf);
        self.found_after.write(buf);
        self.clusters_after.write(buf);
        self.strategy.write(buf);
        self.simulated_secs.write(buf);
        self.jobs.write(buf);
        self.dim.write(buf);
        self.centers_flat.write(buf);
        self.error.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            iteration: u64::read(buf)?,
            clusters_before: u64::read(buf)?,
            clusters_tested: u64::read(buf)?,
            splits: u64::read(buf)?,
            found_after: u64::read(buf)?,
            clusters_after: u64::read(buf)?,
            strategy: Option::read(buf)?,
            simulated_secs: f64::read(buf)?,
            jobs: u64::read(buf)?,
            dim: u32::read(buf)?,
            centers_flat: Vec::read(buf)?,
            error: Option::read(buf)?,
        })
    }
}

/// Stable wire tag of a [`TestStrategy`].
fn strategy_tag(s: TestStrategy) -> u8 {
    match s {
        TestStrategy::FewClusters => 0,
        TestStrategy::Clusters => 1,
    }
}

/// Inverse of [`strategy_tag`].
fn strategy_from_tag(tag: u8) -> Result<TestStrategy> {
    match tag {
        0 => Ok(TestStrategy::FewClusters),
        1 => Ok(TestStrategy::Clusters),
        other => Err(Error::Corrupt(format!("unknown strategy tag {other}"))),
    }
}

/// G-means (Algorithm 1) as a pure state machine on the [`Engine`].
pub struct GMeansAlgo {
    config: GMeansConfig,
    criterion: SplitCriterion,
    force_strategy: Option<TestStrategy>,
}

impl GMeansAlgo {
    fn parent_set(&self, parents: &[Parent], dim: usize) -> CenterSet {
        let mut set = CenterSet::new(dim);
        for p in parents {
            set.push(p.id, &p.center);
        }
        set
    }

    /// Ends the iteration: folds decisions into the hierarchy and
    /// pushes the iteration report.
    fn finalize_iteration(&self, state: &mut GState, scratch: IterScratch, seg: &SegmentStats) {
        let IterScratch {
            clusters_before,
            counts,
            mut candidates,
            auto_normal,
            clusters_tested,
            decisions,
            strategy_used,
            ..
        } = scratch;
        let mut splits = 0usize;
        let parents = std::mem::take(&mut state.parents);
        let mut next_parents: Vec<Parent> = Vec::with_capacity(parents.len() * 2);
        for (pi, p) in parents.into_iter().enumerate() {
            if p.found {
                next_parents.push(p);
                continue;
            }
            let decision = if auto_normal.contains(&pi) {
                TestDecision::Normal
            } else {
                decisions
                    .get(&p.id)
                    .map(|o| o.decision)
                    // No projections reached the test (e.g. the
                    // cluster lost all its points to neighbours):
                    // keep the center.
                    .unwrap_or(TestDecision::Normal)
            };
            match decision {
                TestDecision::Normal | TestDecision::Undecided => {
                    // The BIC criterion retries once with a fresh
                    // child pair (serial X-means re-attempts every
                    // structure round); a one-shot keep-verdict is
                    // too sensitive to an unlucky candidate pair.
                    let streak = p.normal_streak + 1;
                    let retries = match self.criterion {
                        SplitCriterion::AndersonDarling => 1,
                        SplitCriterion::Bic => 2,
                    };
                    let fresh_pair = (!p.children.is_empty()).then(|| {
                        let a = candidates
                            .remove(&p.children[0].id)
                            .unwrap_or_default()
                            .into_iter()
                            .next();
                        let b = candidates
                            .remove(&p.children[1].id)
                            .unwrap_or_default()
                            .into_iter()
                            .next();
                        (a, b)
                    });
                    if streak >= retries {
                        next_parents.push(Parent {
                            found: true,
                            children: Vec::new(),
                            ..p
                        });
                    } else if let Some((Some(a), Some(b))) = fresh_pair {
                        let mut kids = Vec::with_capacity(2);
                        for coords in [a, b] {
                            kids.push(Child {
                                id: state.next_id,
                                coords,
                            });
                            state.next_id += 1;
                        }
                        next_parents.push(Parent {
                            normal_streak: streak,
                            children: kids,
                            ..p
                        });
                    } else {
                        // No fresh candidates: accept.
                        next_parents.push(Parent {
                            found: true,
                            children: Vec::new(),
                            ..p
                        });
                    }
                }
                TestDecision::Split => {
                    splits += 1;
                    for ch in p.children {
                        let count = counts.get(&ch.id).copied().unwrap_or(0);
                        let cands = candidates.remove(&ch.id).unwrap_or_default();
                        let (found, children) = if cands.len() < 2 {
                            (true, Vec::new())
                        } else {
                            let mut kids = Vec::with_capacity(2);
                            for coords in cands.into_iter().take(2) {
                                kids.push(Child {
                                    id: state.next_id,
                                    coords,
                                });
                                state.next_id += 1;
                            }
                            (false, kids)
                        };
                        next_parents.push(Parent {
                            id: ch.id,
                            center: ch.coords,
                            found,
                            count,
                            normal_streak: 0,
                            children,
                        });
                    }
                }
            }
        }
        state.parents = next_parents;

        let mut centers_after = Dataset::with_capacity(state.dim, state.parents.len());
        for p in &state.parents {
            centers_after.push(&p.center);
        }
        state.reports.push(IterationReport {
            iteration: state.iteration,
            clusters_before,
            clusters_tested,
            splits,
            found_after: state.parents.iter().filter(|p| p.found).count(),
            clusters_after: state.parents.len(),
            strategy: strategy_used,
            simulated_secs: seg.simulated_secs,
            jobs: seg.jobs,
            centers_after,
            error: None,
        });
    }
}

impl IterativeAlgorithm for GMeansAlgo {
    type State = GState;
    type Snapshot = GMeansSnapshot;
    type Output = MRGMeansResult;

    const NAME: &'static str = "MRGMeans";
    const MAGIC: u32 = 0x474d_4e01;

    /// `PickInitialCenters`: one serial sample read and the initial
    /// one-cluster hierarchy.
    fn fresh(&self, ctx: &mut EngineCtx<'_>) -> Result<GState> {
        let sample = ctx.sample(64, self.config.seed)?;
        let dim = sample.dim();
        let mut acc = gmr_linalg::CentroidAccumulator::new(dim);
        for row in sample.rows() {
            acc.push(row);
        }
        let mean = acc.mean().expect("nonempty sample").into_vec();
        let (i1, i2) = (
            0,
            if sample.len() > 1 {
                sample.len() / 2
            } else {
                0
            },
        );
        let parents = vec![Parent {
            id: 0,
            center: mean,
            found: false,
            count: 0,
            normal_streak: 0,
            children: vec![
                Child {
                    id: 1,
                    coords: sample.row(i1).to_vec(),
                },
                Child {
                    id: 2,
                    coords: sample.row(i2).to_vec(),
                },
            ],
        }];
        Ok(GState {
            dim,
            next_id: 3,
            iteration: 0,
            parents,
            reports: Vec::new(),
            scratch: None,
        })
    }

    fn dim(&self, state: &GState) -> Result<usize> {
        Ok(state.dim)
    }

    fn done(&self, state: &GState) -> bool {
        state.parents.iter().all(|p| p.found) || state.iteration >= self.config.max_iterations
    }

    fn seq(&self, state: &GState) -> u64 {
        state.iteration as u64
    }

    fn plan(&self, state: &mut GState, ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>> {
        if state.scratch.is_none() {
            // Iteration start: snapshot the hierarchy into the current
            // center set (children of splitting parents, centers of
            // found ones).
            state.iteration += 1;
            let mut current = CenterSet::new(state.dim);
            for p in &state.parents {
                if p.found {
                    current.push(p.id, &p.center);
                } else {
                    for ch in &p.children {
                        current.push(ch.id, &ch.coords);
                    }
                }
            }
            let kmeans_reducers = ctx.reduce_tasks(current.len());
            let refinements = self.config.kmeans_iterations_per_round.max(1) - 1;
            state.scratch = Some(IterScratch {
                phase: if refinements > 0 {
                    GPhase::Refine {
                        remaining: refinements,
                    }
                } else {
                    GPhase::FindNew
                },
                clusters_before: state.parents.len(),
                current,
                kmeans_reducers,
                counts: HashMap::new(),
                candidates: HashMap::new(),
                projectors: Vec::new(),
                child_pairs: Vec::new(),
                auto_normal: Vec::new(),
                clusters_tested: 0,
                decisions: HashMap::new(),
                strategy_used: None,
                undecided: Vec::new(),
            });
        }
        let scratch = state.scratch.as_mut().expect("scratch initialized above");
        match &scratch.phase {
            GPhase::Refine { .. } => {
                let job = KMeansJob::new(Arc::new(ctx.prepare(scratch.current.clone())));
                Ok(vec![PlannedJob::new(job, scratch.kmeans_reducers)])
            }
            GPhase::FindNew => {
                let job = FindNewCentersJob::new(
                    Arc::new(ctx.prepare(scratch.current.clone())),
                    self.config.seed ^ (state.iteration as u64).wrapping_mul(0x9e37),
                );
                Ok(vec![PlannedJob::new(job, scratch.kmeans_reducers)])
            }
            GPhase::Test => {
                let parent_set = Arc::new(ctx.prepare(self.parent_set(&state.parents, state.dim)));
                let test_reducers = ctx.reduce_tasks(scratch.clusters_tested);
                if self.criterion == SplitCriterion::Bic {
                    // X-means decision: one aggregation job, no strategy
                    // switch needed (the aggregates are tiny).
                    let spec = BicTestSpec::new(
                        parent_set,
                        Arc::new(scratch.child_pairs.clone()),
                        self.config.min_test_sample,
                    );
                    Ok(vec![PlannedJob::new(BicTestJob::new(spec), test_reducers)])
                } else {
                    let biggest = state
                        .parents
                        .iter()
                        .enumerate()
                        .filter(|(pi, p)| !p.found && scratch.projectors[*pi].is_some())
                        .map(|(_, p)| p.count)
                        .max()
                        .unwrap_or(0);
                    let strategy = self.force_strategy.unwrap_or_else(|| {
                        choose_strategy(scratch.clusters_tested, biggest, ctx.cluster())
                    });
                    scratch.strategy_used = Some(strategy);
                    let spec = SplitTestSpec::new(
                        parent_set,
                        Arc::new(scratch.projectors.clone()),
                        self.config.ad_test(),
                    );
                    Ok(vec![match strategy {
                        TestStrategy::FewClusters => {
                            PlannedJob::new(TestFewClustersJob::new(spec), test_reducers)
                        }
                        TestStrategy::Clusters => {
                            PlannedJob::new(TestClustersJob::new(spec), test_reducers)
                        }
                    }])
                }
            }
            GPhase::Retry => {
                // Mapper-side testing came back undecided where every
                // split's sub-sample was too small; re-test those with
                // the reducer-side strategy (an extra job, only when
                // needed).
                let mut retry_projectors: Vec<Option<SegmentProjector>> =
                    vec![None; state.parents.len()];
                for (pi, p) in state.parents.iter().enumerate() {
                    if scratch.undecided.contains(&p.id) {
                        retry_projectors[pi] = scratch.projectors[pi].clone();
                    }
                }
                let parent_set = Arc::new(ctx.prepare(self.parent_set(&state.parents, state.dim)));
                let spec = SplitTestSpec::new(
                    parent_set,
                    Arc::new(retry_projectors),
                    self.config.ad_test(),
                );
                Ok(vec![PlannedJob::new(
                    TestClustersJob::new(spec),
                    ctx.reduce_tasks(scratch.undecided.len()),
                )])
            }
        }
    }

    fn apply(
        &self,
        state: &mut GState,
        mut outputs: Vec<JobOutputs>,
        seg: &SegmentStats,
    ) -> Result<Step> {
        let mut scratch = state.scratch.take().expect("apply without plan");
        match scratch.phase {
            GPhase::Refine { remaining } => {
                let updates = outputs.remove(0).take::<CenterUpdate>();
                let (next, _) = apply_updates(&scratch.current, &updates);
                scratch.current = next;
                scratch.phase = if remaining > 1 {
                    GPhase::Refine {
                        remaining: remaining - 1,
                    }
                } else {
                    GPhase::FindNew
                };
                state.scratch = Some(scratch);
                Ok(Step::Continue)
            }
            GPhase::FindNew => {
                let output = outputs.remove(0).take::<FindNewOutput>();
                let mut updates: Vec<CenterUpdate> = Vec::new();
                for out in output {
                    match out {
                        FindNewOutput::Update(u) => updates.push(u),
                        FindNewOutput::Candidates { id, points } => {
                            scratch.candidates.insert(id, points);
                        }
                    }
                }
                let (refined, counts_vec) = apply_updates(&scratch.current, &updates);
                scratch.current = refined;
                scratch.counts = (0..scratch.current.len())
                    .map(|i| (scratch.current.id(i), counts_vec[i]))
                    .collect();

                // Push the refined positions back into the hierarchy.
                for p in state.parents.iter_mut() {
                    if p.found {
                        if let Some(idx) = scratch.current.index_of(p.id) {
                            p.center = scratch.current.coords(idx).to_vec();
                            p.count = scratch.counts[&p.id];
                        }
                    } else {
                        for ch in p.children.iter_mut() {
                            if let Some(idx) = scratch.current.index_of(ch.id) {
                                ch.coords = scratch.current.coords(idx).to_vec();
                            }
                        }
                        p.count = p
                            .children
                            .iter()
                            .map(|ch| scratch.counts.get(&ch.id).copied().unwrap_or(0))
                            .sum();
                    }
                }

                // Build projectors; settle trivial cases without a job.
                scratch.projectors = vec![None; state.parents.len()];
                scratch.child_pairs = vec![None; state.parents.len()];
                for (pi, p) in state.parents.iter().enumerate() {
                    if p.found {
                        continue;
                    }
                    let c1 = &p.children[0];
                    let c2 = &p.children[1];
                    let n1 = scratch.counts.get(&c1.id).copied().unwrap_or(0);
                    let n2 = scratch.counts.get(&c2.id).copied().unwrap_or(0);
                    if n1 == 0 || n2 == 0 || n1 + n2 < self.config.min_test_sample as u64 {
                        // Nothing to split: an empty half or a cluster
                        // too small to test.
                        scratch.auto_normal.push(pi);
                        continue;
                    }
                    let proj = SegmentProjector::new(&c1.coords, &c2.coords);
                    if proj.is_degenerate() {
                        scratch.auto_normal.push(pi);
                    } else {
                        scratch.projectors[pi] = Some(proj);
                        scratch.child_pairs[pi] = Some((c1.coords.clone(), c2.coords.clone()));
                    }
                }
                scratch.clusters_tested = scratch.projectors.iter().filter(|p| p.is_some()).count();

                if scratch.clusters_tested > 0 {
                    scratch.phase = GPhase::Test;
                    state.scratch = Some(scratch);
                    Ok(Step::Continue)
                } else {
                    self.finalize_iteration(state, scratch, seg);
                    Ok(Step::Boundary)
                }
            }
            GPhase::Test => {
                let outcomes = outputs.remove(0).take::<TestOutcome>();
                for o in outcomes {
                    scratch.decisions.insert(o.parent_id, o);
                }
                if self.criterion == SplitCriterion::Bic {
                    // The BIC aggregation decides every cluster in one
                    // pass; there is no undecided retry.
                    self.finalize_iteration(state, scratch, seg);
                    return Ok(Step::Boundary);
                }
                scratch.undecided = scratch
                    .decisions
                    .values()
                    .filter(|o| o.decision == TestDecision::Undecided)
                    .map(|o| o.parent_id)
                    .collect();
                if scratch.undecided.is_empty() {
                    self.finalize_iteration(state, scratch, seg);
                    Ok(Step::Boundary)
                } else {
                    scratch.phase = GPhase::Retry;
                    state.scratch = Some(scratch);
                    Ok(Step::Continue)
                }
            }
            GPhase::Retry => {
                let outcomes = outputs.remove(0).take::<TestOutcome>();
                for o in outcomes {
                    scratch.decisions.insert(o.parent_id, o);
                }
                self.finalize_iteration(state, scratch, seg);
                Ok(Step::Boundary)
            }
        }
    }

    fn snapshot(&self, state: &GState) -> GMeansSnapshot {
        GMeansSnapshot {
            dim: state.dim as u32,
            next_id: state.next_id,
            iteration: state.iteration as u64,
            parents: state.parents.iter().map(parent_to_snap).collect(),
            reports: state.reports.iter().map(report_to_snap).collect(),
        }
    }

    fn restore(&self, snap: GMeansSnapshot) -> Result<GState> {
        let reports = snap
            .reports
            .into_iter()
            .map(report_from_snap)
            .collect::<Result<Vec<_>>>()?;
        Ok(GState {
            dim: snap.dim as usize,
            next_id: snap.next_id,
            iteration: snap.iteration as usize,
            parents: snap.parents.into_iter().map(parent_from_snap).collect(),
            reports,
            scratch: None,
        })
    }

    fn on_task_failure(
        &self,
        state: &mut GState,
        failure: Error,
        seg: &SegmentStats,
    ) -> Result<Error> {
        // A job of this iteration exhausted its task attempts: report
        // the iteration as failed; `finish` then accepts the hierarchy
        // as it stood after the last completed iteration.
        state.scratch = None;
        let mut centers_after = Dataset::with_capacity(state.dim, state.parents.len());
        for p in &state.parents {
            centers_after.push(&p.center);
        }
        state.reports.push(IterationReport {
            iteration: state.iteration,
            clusters_before: state.parents.len(),
            clusters_tested: 0,
            splits: 0,
            found_after: state.parents.iter().filter(|p| p.found).count(),
            clusters_after: state.parents.len(),
            strategy: None,
            simulated_secs: seg.simulated_secs,
            jobs: seg.jobs,
            centers_after,
            error: Some(failure.to_string()),
        });
        Ok(failure)
    }

    fn finish(
        &self,
        mut state: GState,
        _ctx: &mut EngineCtx<'_>,
        stats: RunStats,
    ) -> Result<MRGMeansResult> {
        // Iteration cap hit (or run ended by a task failure): accept
        // whatever is left.
        for p in state.parents.iter_mut() {
            p.found = true;
        }
        let mut centers = Dataset::with_capacity(state.dim, state.parents.len());
        let mut counts = Vec::with_capacity(state.parents.len());
        for p in &state.parents {
            centers.push(&p.center);
            counts.push(p.count);
        }
        Ok(MRGMeansResult {
            centers,
            counts,
            iterations: state.iteration,
            reports: state.reports,
            simulated_secs: stats.simulated_secs,
            wall_secs: stats.wall_secs,
            counters: stats.counters,
            dataset_reads: stats.dataset_reads,
            jobs: stats.jobs,
            failure: stats.failure,
        })
    }
}

/// MapReduce G-means.
pub struct MRGMeans {
    runner: JobRunner,
    config: GMeansConfig,
    force_strategy: Option<TestStrategy>,
    mode: ExecutionMode,
    kd_index: bool,
    pruning: bool,
    tile_workers: usize,
    criterion: SplitCriterion,
    checkpoint_dir: Option<String>,
}

impl MRGMeans {
    /// Creates a driver running on `runner`'s cluster.
    pub fn new(runner: JobRunner, config: GMeansConfig) -> Self {
        Self {
            runner,
            config,
            force_strategy: None,
            mode: ExecutionMode::OnDisk,
            kd_index: false,
            pruning: false,
            tile_workers: 1,
            criterion: SplitCriterion::AndersonDarling,
            checkpoint_dir: None,
        }
    }

    /// Selects the split criterion: Anderson–Darling (G-means, default)
    /// or BIC (X-means). See [`SplitCriterion`].
    pub fn with_split_criterion(mut self, criterion: SplitCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Enables the k-d-tree nearest-center index (the mrkd-tree
    /// acceleration of §2's related work) inside every job of the run.
    /// Results are identical; the distance-evaluation counters drop.
    pub fn with_kd_index(mut self, kd_index: bool) -> Self {
        self.kd_index = kd_index;
        self
    }

    /// Enables triangle-inequality center pruning inside every job of
    /// the run (ignored when the k-d index is also enabled, which
    /// subsumes it). Results are identical; the distance-evaluation
    /// counters drop, so like the k-d index it is opt-in — the default
    /// path keeps the paper's O(nk) accounting.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Splits every cached map block's kernel work across `workers`
    /// deterministic parallel tiles inside the default (cost-neutral)
    /// kernel backend. Results, counters, emissions and checkpoints are
    /// byte-identical for every value; only wall time changes.
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }

    /// Journals driver state into a DFS checkpoint directory after
    /// `PickInitialCenters` and after every iteration, enabling
    /// [`MRGMeans::resume`]. Commit I/O is charged to the simulated
    /// clock and the checkpoint counters.
    pub fn with_checkpoints(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Selects disk-based (Hadoop-style) or cached (Spark-style)
    /// execution. See [`ExecutionMode`].
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the §3.2 strategy switch, always using the given test
    /// job. For the ablation that measures what switching too early or
    /// too late costs; `None` (the default) applies the paper's rule.
    pub fn with_forced_strategy(mut self, strategy: Option<TestStrategy>) -> Self {
        self.force_strategy = strategy;
        self
    }

    fn engine(&self) -> Engine {
        let engine = Engine::new(self.runner.clone())
            .with_execution_mode(self.mode)
            .with_kd_index(self.kd_index)
            .with_pruning(self.pruning)
            .with_tile_workers(self.tile_workers);
        match &self.checkpoint_dir {
            Some(dir) => engine.with_checkpoints(dir.clone()),
            None => engine,
        }
    }

    fn algo(&self) -> GMeansAlgo {
        GMeansAlgo {
            config: self.config,
            criterion: self.criterion,
            force_strategy: self.force_strategy,
        }
    }

    /// Clusters the DFS text file at `input`.
    pub fn run(&self, input: &str) -> Result<MRGMeansResult> {
        self.engine().run(&self.algo(), input)
    }

    /// Resumes an interrupted checkpointed run from its newest intact
    /// snapshot, continuing to a result bit-identical to an
    /// uninterrupted [`MRGMeans::run`]. Falls back to a fresh run when
    /// the journal holds no valid checkpoint. Requires
    /// [`MRGMeans::with_checkpoints`].
    pub fn resume(&self, input: &str) -> Result<MRGMeansResult> {
        self.engine().resume(&self.algo(), input)
    }
}

fn parent_to_snap(p: &Parent) -> ParentSnap {
    ParentSnap {
        id: p.id,
        center: p.center.clone(),
        found: p.found,
        count: p.count,
        normal_streak: p.normal_streak,
        children: p
            .children
            .iter()
            .map(|ch| ChildSnap {
                id: ch.id,
                coords: ch.coords.clone(),
            })
            .collect(),
    }
}

fn parent_from_snap(s: ParentSnap) -> Parent {
    Parent {
        id: s.id,
        center: s.center,
        found: s.found,
        count: s.count,
        normal_streak: s.normal_streak,
        children: s
            .children
            .into_iter()
            .map(|ch| Child {
                id: ch.id,
                coords: ch.coords,
            })
            .collect(),
    }
}

fn report_to_snap(r: &IterationReport) -> ReportSnap {
    ReportSnap {
        iteration: r.iteration as u64,
        clusters_before: r.clusters_before as u64,
        clusters_tested: r.clusters_tested as u64,
        splits: r.splits as u64,
        found_after: r.found_after as u64,
        clusters_after: r.clusters_after as u64,
        strategy: r.strategy.map(strategy_tag),
        simulated_secs: r.simulated_secs,
        jobs: r.jobs as u64,
        dim: r.centers_after.dim() as u32,
        centers_flat: r
            .centers_after
            .rows()
            .flat_map(|row| row.to_vec())
            .collect(),
        error: r.error.clone(),
    }
}

fn report_from_snap(s: ReportSnap) -> Result<IterationReport> {
    let dim = s.dim as usize;
    if dim == 0 || s.centers_flat.len() % dim != 0 {
        return Err(Error::Corrupt(
            "iteration report snapshot shape mismatch".into(),
        ));
    }
    let mut centers_after = Dataset::with_capacity(dim, s.centers_flat.len() / dim);
    for chunk in s.centers_flat.chunks_exact(dim) {
        centers_after.push(chunk);
    }
    Ok(IterationReport {
        iteration: s.iteration as usize,
        clusters_before: s.clusters_before as usize,
        clusters_tested: s.clusters_tested as usize,
        splits: s.splits as usize,
        found_after: s.found_after as usize,
        clusters_after: s.clusters_after as usize,
        strategy: s.strategy.map(strategy_from_tag).transpose()?,
        simulated_secs: s.simulated_secs,
        jobs: s.jobs as usize,
        centers_after,
        error: s.error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_tags_are_stable() {
        // The journal wire format depends on these exact values.
        assert_eq!(strategy_tag(TestStrategy::FewClusters), 0);
        assert_eq!(strategy_tag(TestStrategy::Clusters), 1);
        assert_eq!(strategy_from_tag(0).unwrap(), TestStrategy::FewClusters);
        assert_eq!(strategy_from_tag(1).unwrap(), TestStrategy::Clusters);
        assert!(strategy_from_tag(9).is_err());
    }
}
