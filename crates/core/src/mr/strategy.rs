//! Choosing between the two split-test strategies (§3.2).
//!
//! "The algorithm will thus first use the TestFewClusters strategy, and
//! switch to the other strategy only when the following two conditions
//! are met: the number of clusters to test is larger than the total
//! reduce capacity, and the estimated maximum amount of required heap
//! memory is less than 66% of the heap memory of the JVM."
//!
//! The heap estimate multiplies the biggest cluster's point count by the
//! per-point cost measured in Figure 2 (64 bytes), exactly as the paper
//! calibrates it; the per-iteration cluster counts come for free from
//! the k-means reducers.

use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::memory::HeapEstimator;

/// Which split-test job to run this iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestStrategy {
    /// Mapper-side testing (Algorithm 5) — the low-k workhorse.
    FewClusters,
    /// Reducer-side testing (Algorithms 3–4) — used once `k` exceeds
    /// the cluster's reduce capacity *and* the biggest cluster fits in
    /// a reducer's heap.
    Clusters,
}

/// Applies the paper's switch rule.
pub fn choose_strategy(
    clusters_to_test: usize,
    biggest_cluster_points: u64,
    cluster: &ClusterConfig,
) -> TestStrategy {
    let estimator = HeapEstimator::with_heap(cluster.heap_per_task);
    if clusters_to_test > cluster.total_reduce_slots() && estimator.fits(biggest_cluster_points) {
        TestStrategy::Clusters
    } else {
        TestStrategy::FewClusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_mapreduce::memory::{BYTES_PER_PROJECTION, MAX_HEAP_USAGE};

    fn cluster() -> ClusterConfig {
        ClusterConfig::default() // 4 nodes × 8 = 32 reduce slots, 1 GiB heap
    }

    #[test]
    fn low_k_uses_few_clusters() {
        assert_eq!(
            choose_strategy(4, 1_000_000, &cluster()),
            TestStrategy::FewClusters
        );
    }

    #[test]
    fn high_k_small_clusters_switch() {
        assert_eq!(
            choose_strategy(100, 100_000, &cluster()),
            TestStrategy::Clusters
        );
    }

    #[test]
    fn high_k_but_huge_cluster_stays_mapper_side() {
        // A cluster needing more than 66% of the heap must not be sent
        // to a single reducer.
        let c = cluster();
        let too_big = ((c.heap_per_task as f64 * MAX_HEAP_USAGE) as u64 / BYTES_PER_PROJECTION) + 1;
        assert_eq!(choose_strategy(100, too_big, &c), TestStrategy::FewClusters);
        let fits = too_big - 2;
        assert_eq!(choose_strategy(100, fits, &c), TestStrategy::Clusters);
    }

    #[test]
    fn boundary_is_reduce_capacity() {
        let c = cluster();
        assert_eq!(c.total_reduce_slots(), 32);
        assert_eq!(choose_strategy(32, 1000, &c), TestStrategy::FewClusters);
        assert_eq!(choose_strategy(33, 1000, &c), TestStrategy::Clusters);
    }

    #[test]
    fn more_nodes_delay_the_switch() {
        let big = ClusterConfig::with_nodes(12); // 96 reduce slots
        assert_eq!(choose_strategy(60, 1000, &big), TestStrategy::FewClusters);
        assert_eq!(choose_strategy(97, 1000, &big), TestStrategy::Clusters);
    }
}
