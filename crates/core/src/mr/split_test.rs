//! The cluster split test: `TestClusters` (Algorithms 3–4) and
//! `TestFewClusters` (Algorithm 5), plus the shared projection logic.
//!
//! Both jobs answer the same question for every cluster of the previous
//! iteration: *do its points, projected on the axis joining its two
//! refined children, look Gaussian?* They differ in **where** the
//! Anderson–Darling test runs:
//!
//! * `TestClusters` — the mapper projects and shuffles raw projections;
//!   one reducer per cluster buffers them (on the simulated heap — this
//!   is the reducer Figure 2 profiles at 64 B/point) and tests.
//!   Parallelism of the test phase is `k`, so it "performs poorly" when
//!   `k` is low.
//! * `TestFewClusters` — the mapper buffers projections per cluster *for
//!   its split only* and tests in `Close`, shuffling one tiny verdict
//!   per (cluster, split). Reducers only combine verdicts. Works great
//!   when `k` is low (every split holds plenty of points per cluster);
//!   when `k` is high, per-split sub-samples fall under the 20-point
//!   minimum and the mapper "is then not able to compute a decision".
//!
//! The choice between them is [`crate::mr::strategy`]'s job.

use std::collections::HashMap;
use std::sync::Arc;

use gmr_linalg::SegmentProjector;
use gmr_mapreduce::memory::BYTES_PER_PROJECTION;
use gmr_mapreduce::prelude::*;
use gmr_stats::{AdError, AndersonDarling};

use crate::mr::centers::CenterSet;
use crate::mr::kmeans_job::{empty_centers_error, parse_point_or_skip};

/// What the split test concluded for one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestDecision {
    /// Projections look Gaussian — keep the original center.
    Normal,
    /// Projections are non-Gaussian — split into the two children.
    Split,
    /// No mapper sub-sample was large enough to decide
    /// (`TestFewClusters` only). The driver re-tests such clusters with
    /// the reducer-side strategy.
    Undecided,
}

/// Per-cluster outcome of a split-test job.
#[derive(Clone, Debug, PartialEq)]
pub struct TestOutcome {
    /// Id of the tested (previous-iteration) cluster.
    pub parent_id: i64,
    /// Projections that informed the decision.
    pub n: u64,
    /// The corrected Anderson–Darling statistic, when a test ran.
    pub a2_star: Option<f64>,
    /// The decision.
    pub decision: TestDecision,
}

/// Everything a split-test mapper needs at `Setup` (Algorithm 3:
/// "Build vectors from center pairs; Read centers from previous
/// iteration").
#[derive(Clone)]
pub struct SplitTestSpec {
    /// Previous-iteration centers — the clusters points belong to.
    pub parents: Arc<CenterSet>,
    /// Projection vector per parent (indexed like `parents`); `None`
    /// for clusters that are already accepted and need no test.
    pub projectors: Arc<Vec<Option<SegmentProjector>>>,
    /// The configured normality test.
    pub ad: AndersonDarling,
}

impl SplitTestSpec {
    /// Validates the spec's shape.
    pub fn new(
        parents: Arc<CenterSet>,
        projectors: Arc<Vec<Option<SegmentProjector>>>,
        ad: AndersonDarling,
    ) -> Self {
        assert_eq!(
            parents.len(),
            projectors.len(),
            "one projector slot per parent"
        );
        assert!(!parents.is_empty(), "need at least one parent");
        Self {
            parents,
            projectors,
            ad,
        }
    }

    /// Projects one parsed point; `None` when the point belongs to a
    /// cluster without a test vector.
    fn project(&self, point: &[f64], ctx: &mut TaskContext) -> Result<Option<(i64, f64)>> {
        let (idx, id, _, evals) = self
            .parents
            .nearest_with_cost(point)
            .ok_or_else(|| empty_centers_error("TestClusters"))?;
        Ok(self.project_assigned(point, idx, id, evals, ctx))
    }

    /// Projects a point whose nearest parent was already found (by the
    /// blocked kernel); charges the same cost in the same order as
    /// [`SplitTestSpec::project`].
    fn project_assigned(
        &self,
        point: &[f64],
        idx: usize,
        id: i64,
        evals: u64,
        ctx: &mut TaskContext,
    ) -> Option<(i64, f64)> {
        ctx.charge_distances(evals, self.parents.dim());
        self.projectors[idx].as_ref().map(|proj| {
            ctx.counters().inc(Counter::Projections);
            ctx.charge_compute(self.parents.dim() as f64);
            (id, proj.project(point))
        })
    }

    /// Runs the Anderson–Darling test on a buffered sample, mapping
    /// statistical edge cases to the conservative decision.
    fn decide(&self, sample: &mut [f64], ctx: &mut TaskContext) -> (Option<f64>, TestDecision) {
        ctx.counters().inc(Counter::AdTests);
        // n·log n comparison work plus CDF evaluations.
        let n = sample.len() as f64;
        ctx.charge_compute(n * (n.max(2.0)).log2() + 30.0 * n);
        match self.ad.test_in_place(sample) {
            Ok(outcome) => {
                let decision = if outcome.is_normal(self.ad.alpha()) {
                    TestDecision::Normal
                } else {
                    TestDecision::Split
                };
                (Some(outcome.a2_star), decision)
            }
            // Too small to test: keep the cluster (splitting something
            // that cannot even be tested only shrinks it further).
            Err(AdError::SampleTooSmall { .. }) => (None, TestDecision::Normal),
            // No variation along the split axis: nothing to split.
            Err(AdError::ZeroVariance) => (None, TestDecision::Normal),
            Err(AdError::NonFinite) => (None, TestDecision::Normal),
        }
    }
}

// ---------------------------------------------------------------------
// TestClusters (Algorithms 3 and 4)
// ---------------------------------------------------------------------

/// Reducer-side split test job.
pub struct TestClustersJob {
    spec: SplitTestSpec,
}

impl TestClustersJob {
    /// Creates the job.
    pub fn new(spec: SplitTestSpec) -> Self {
        Self { spec }
    }
}

/// Mapper: project every point onto its cluster's vector (Algorithm 3).
pub struct TestClustersMapper {
    spec: SplitTestSpec,
    /// `(index, id, evals)` rows from the blocked kernel, drained one
    /// per `map_point` call; empty in text mode (scalar fallback).
    pending: std::collections::VecDeque<(usize, i64, u64)>,
}

impl Mapper for TestClustersMapper {
    type Key = i64;
    type Value = f64;

    fn map(
        &mut self,
        _offset: u64,
        line: &str,
        out: &mut MapOutput<'_, i64, f64>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match parse_point_or_skip(line, self.spec.parents.dim(), ctx) {
            Some(point) => self.map_point(&point, out, ctx),
            None => Ok(()),
        }
    }
}

impl PointMapper for TestClustersMapper {
    fn map_point(
        &mut self,
        point: &[f64],
        out: &mut MapOutput<'_, i64, f64>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let projected = match self.pending.pop_front() {
            Some((idx, id, evals)) => self.spec.project_assigned(point, idx, id, evals, ctx),
            None => self.spec.project(point, ctx)?,
        };
        if let Some((id, projection)) = projected {
            out.emit(id, projection);
        }
        Ok(())
    }

    fn prepare_block(
        &mut self,
        points: &[f64],
        norms: &[f64],
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        debug_assert!(self.pending.is_empty(), "undrained block");
        self.pending.clear();
        self.pending.extend(
            self.spec
                .parents
                .nearest_block(points, norms)
                .into_iter()
                .map(|(idx, id, _, evals)| (idx, id, evals)),
        );
        Ok(())
    }
}

/// Reducer: buffer the projections (charging the simulated heap at the
/// paper's measured 64 B/point), normalize, test (Algorithm 4).
pub struct TestClustersReducer {
    spec: SplitTestSpec,
}

impl Reducer for TestClustersReducer {
    type Key = i64;
    type Value = f64;
    type Output = TestOutcome;

    fn reduce(
        &mut self,
        key: i64,
        values: Values<'_, f64>,
        out: &mut Vec<TestOutcome>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        // "Read projections to build a vector" — this buffering is what
        // exhausts the JVM heap in Figure 2.
        let mut sample: Vec<f64> = Vec::new();
        for v in values {
            ctx.heap.charge(BYTES_PER_PROJECTION)?;
            sample.push(v);
        }
        let n = sample.len() as u64;
        let (a2_star, decision) = self.spec.decide(&mut sample, ctx);
        ctx.heap.release(n * BYTES_PER_PROJECTION);
        out.push(TestOutcome {
            parent_id: key,
            n,
            a2_star,
            decision,
        });
        Ok(())
    }
}

impl Job for TestClustersJob {
    type Key = i64;
    type Value = f64;
    type Output = TestOutcome;
    type Mapper = TestClustersMapper;
    type Reducer = TestClustersReducer;

    fn name(&self) -> &str {
        "TestClusters"
    }

    fn create_mapper(&self) -> TestClustersMapper {
        TestClustersMapper {
            spec: self.spec.clone(),
            pending: std::collections::VecDeque::new(),
        }
    }

    fn create_reducer(&self) -> TestClustersReducer {
        TestClustersReducer {
            spec: self.spec.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// TestFewClusters (Algorithm 5)
// ---------------------------------------------------------------------

/// Mapper-side verdict: sub-sample size and, when testable, its `A*²`.
pub type SubVerdict = (u64, Option<f64>);

/// Mapper-side split test job.
pub struct TestFewClustersJob {
    spec: SplitTestSpec,
}

impl TestFewClustersJob {
    /// Creates the job.
    pub fn new(spec: SplitTestSpec) -> Self {
        Self { spec }
    }
}

/// Mapper: buffer projections per cluster, test in `Close`
/// (Algorithm 5). The buffers live on the *mapper's* heap, bounded by
/// the split size — the memory argument for this strategy in §3.2.
pub struct TestFewClustersMapper {
    spec: SplitTestSpec,
    buffers: HashMap<i64, Vec<f64>>,
    /// `(index, id, evals)` rows from the blocked kernel, drained one
    /// per `map_point` call; empty in text mode (scalar fallback).
    pending: std::collections::VecDeque<(usize, i64, u64)>,
}

impl Mapper for TestFewClustersMapper {
    type Key = i64;
    type Value = SubVerdict;

    fn map(
        &mut self,
        _offset: u64,
        line: &str,
        out: &mut MapOutput<'_, i64, SubVerdict>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match parse_point_or_skip(line, self.spec.parents.dim(), ctx) {
            Some(point) => self.map_point(&point, out, ctx),
            None => Ok(()),
        }
    }

    fn close(
        &mut self,
        out: &mut MapOutput<'_, i64, SubVerdict>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let mut buffers: Vec<(i64, Vec<f64>)> = self.buffers.drain().collect();
        buffers.sort_by_key(|(id, _)| *id); // deterministic emission order
        for (id, mut sample) in buffers {
            let n = sample.len() as u64;
            if sample.len() >= self.spec.ad.min_sample() {
                let (a2_star, _) = self.spec.decide(&mut sample, ctx);
                out.emit(id, (n, a2_star));
            } else {
                // "the mapper is then not able to compute a decision"
                out.emit(id, (n, None));
            }
            ctx.heap.release(n * BYTES_PER_PROJECTION);
        }
        Ok(())
    }
}

/// Reducer: combine the mappers' verdicts — "their task is only to
/// combine the decisions taken by mappers".
pub struct TestFewClustersReducer {
    spec: SplitTestSpec,
}

impl Reducer for TestFewClustersReducer {
    type Key = i64;
    type Value = SubVerdict;
    type Output = TestOutcome;

    fn reduce(
        &mut self,
        key: i64,
        values: Values<'_, SubVerdict>,
        out: &mut Vec<TestOutcome>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        let alpha = self.spec.ad.alpha();
        let mut total_n = 0u64;
        let mut worst_a2: Option<f64> = None;
        // Weighted Stouffer combination of the sub-sample p-values:
        // each mapper's test is weak on its own (a split holds only a
        // slice of the cluster), but under H₀ the p-values are uniform,
        // so Z = Σ wᵢ·Φ⁻¹(1−pᵢ) / √(Σ wᵢ²) with wᵢ = √nᵢ is standard
        // normal — and accumulates many mildly suspicious sub-samples
        // into a decisive rejection. A plain "any sub-test rejected?"
        // rule has almost no power at the paper's strict α = 1e-4.
        let mut z_num = 0.0f64;
        let mut w2_sum = 0.0f64;
        let mut tested = 0usize;
        for (n, a2_star) in values {
            total_n += n;
            if let Some(a2) = a2_star {
                worst_a2 = Some(worst_a2.map_or(a2, |w: f64| w.max(a2)));
                let p = gmr_stats::anderson_darling::p_value_case4(a2).clamp(1e-15, 1.0 - 1e-15);
                let w = (n as f64).sqrt();
                z_num += w * gmr_stats::normal_quantile(1.0 - p);
                w2_sum += w * w;
                tested += 1;
            }
        }
        let decision = if tested > 0 {
            let z = z_num / w2_sum.sqrt();
            let p_combined = 1.0 - gmr_stats::normal_cdf(z);
            if p_combined <= alpha {
                TestDecision::Split
            } else {
                TestDecision::Normal
            }
        } else if total_n < self.spec.ad.min_sample() as u64 {
            TestDecision::Normal // too small to ever test — keep
        } else {
            TestDecision::Undecided // big cluster, all sub-samples tiny
        };
        out.push(TestOutcome {
            parent_id: key,
            n: total_n,
            a2_star: worst_a2,
            decision,
        });
        Ok(())
    }
}

impl PointMapper for TestFewClustersMapper {
    fn map_point(
        &mut self,
        point: &[f64],
        _out: &mut MapOutput<'_, i64, SubVerdict>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let projected = match self.pending.pop_front() {
            Some((idx, id, evals)) => self.spec.project_assigned(point, idx, id, evals, ctx),
            None => self.spec.project(point, ctx)?,
        };
        if let Some((id, projection)) = projected {
            ctx.heap.charge(BYTES_PER_PROJECTION)?;
            self.buffers.entry(id).or_default().push(projection);
        }
        Ok(())
    }

    fn prepare_block(
        &mut self,
        points: &[f64],
        norms: &[f64],
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        debug_assert!(self.pending.is_empty(), "undrained block");
        self.pending.clear();
        self.pending.extend(
            self.spec
                .parents
                .nearest_block(points, norms)
                .into_iter()
                .map(|(idx, id, _, evals)| (idx, id, evals)),
        );
        Ok(())
    }
}

impl Job for TestFewClustersJob {
    type Key = i64;
    type Value = SubVerdict;
    type Output = TestOutcome;
    type Mapper = TestFewClustersMapper;
    type Reducer = TestFewClustersReducer;

    fn name(&self) -> &str {
        "TestFewClusters"
    }

    fn create_mapper(&self) -> TestFewClustersMapper {
        TestFewClustersMapper {
            spec: self.spec.clone(),
            buffers: HashMap::new(),
            pending: std::collections::VecDeque::new(),
        }
    }

    fn create_reducer(&self) -> TestFewClustersReducer {
        TestFewClustersReducer {
            spec: self.spec.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{format_point, ClusterWeights, GaussianMixture};
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;
    use gmr_mapreduce::runtime::JobRunner;

    /// One parent at the origin-ish mean of either one blob (normal) or
    /// two blobs (should split); projector along the blob axis.
    fn spec_for(parents: CenterSet, pairs: Vec<Option<(Vec<f64>, Vec<f64>)>>) -> SplitTestSpec {
        let projectors: Vec<Option<SegmentProjector>> = pairs
            .into_iter()
            .map(|p| p.map(|(a, b)| SegmentProjector::new(&a, &b)))
            .collect();
        SplitTestSpec::new(
            Arc::new(parents),
            Arc::new(projectors),
            AndersonDarling::default(),
        )
    }

    fn write_blobs(two: bool, n: usize, seed: u64, block: usize) -> Arc<Dfs> {
        let spec = GaussianMixture {
            n_points: n,
            dim: 2,
            n_clusters: if two { 2 } else { 1 },
            box_min: 0.0,
            box_max: 30.0,
            stddev: 1.0,
            min_separation_sigmas: if two { 15.0 } else { 0.0 },
            seed,
            weights: ClusterWeights::Balanced,
        };
        let d = spec.generate().unwrap();
        let dfs = Arc::new(Dfs::new(block));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        dfs.put_lines("truth", d.true_centers.rows().map(format_point))
            .unwrap();
        dfs
    }

    fn truth_centers(dfs: &Arc<Dfs>) -> Vec<Vec<f64>> {
        dfs.read_lines("truth")
            .unwrap()
            .iter()
            .map(|l| gmr_datagen::parse_point(l).unwrap())
            .collect()
    }

    fn run_test_job(dfs: Arc<Dfs>, spec: SplitTestSpec, few: bool) -> Vec<TestOutcome> {
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let config = JobConfig::with_reducers(2);
        if few {
            runner
                .run(&TestFewClustersJob::new(spec), "pts", &config)
                .unwrap()
                .output
        } else {
            runner
                .run(&TestClustersJob::new(spec), "pts", &config)
                .unwrap()
                .output
        }
    }

    #[test]
    fn gaussian_cluster_is_kept_by_both_strategies() {
        for few in [false, true] {
            let dfs = write_blobs(false, 2000, 5, 1 << 20);
            let truth = truth_centers(&dfs);
            let mut parents = CenterSet::new(2);
            parents.push(0, &truth[0]);
            // Children on either side of the true center.
            let c1 = vec![truth[0][0] - 1.0, truth[0][1]];
            let c2 = vec![truth[0][0] + 1.0, truth[0][1]];
            let spec = spec_for(parents, vec![Some((c1, c2))]);
            let out = run_test_job(dfs, spec, few);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].decision, TestDecision::Normal, "few={few}");
            assert_eq!(out[0].n, 2000);
        }
    }

    #[test]
    fn bimodal_cluster_is_split_by_both_strategies() {
        for few in [false, true] {
            let dfs = write_blobs(true, 2000, 6, 1 << 20);
            let truth = truth_centers(&dfs);
            // One parent midway between the two blobs; children at the
            // blob centers — the projection is clearly bimodal.
            let mid: Vec<f64> = truth[0]
                .iter()
                .zip(&truth[1])
                .map(|(a, b)| (a + b) / 2.0)
                .collect();
            let mut parents = CenterSet::new(2);
            parents.push(0, &mid);
            let spec = spec_for(parents, vec![Some((truth[0].clone(), truth[1].clone()))]);
            let out = run_test_job(dfs, spec, few);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].decision, TestDecision::Split, "few={few}");
            assert!(out[0].a2_star.unwrap() > 1.0);
        }
    }

    #[test]
    fn found_clusters_are_not_tested() {
        let dfs = write_blobs(false, 500, 7, 1 << 20);
        let truth = truth_centers(&dfs);
        let mut parents = CenterSet::new(2);
        parents.push(0, &truth[0]);
        let spec = spec_for(parents, vec![None]); // already accepted
        let out = run_test_job(dfs, spec, false);
        assert!(out.is_empty(), "no vector → no projections → no outcome");
    }

    #[test]
    fn few_strategy_undecided_on_scattered_small_subsamples() {
        // 60 points across many tiny splits: every mapper sees fewer
        // than 20 points of the cluster, so nobody can decide.
        let dfs = write_blobs(false, 60, 8, 64);
        let truth = truth_centers(&dfs);
        let mut parents = CenterSet::new(2);
        parents.push(0, &truth[0]);
        let c1 = vec![truth[0][0] - 1.0, truth[0][1]];
        let c2 = vec![truth[0][0] + 1.0, truth[0][1]];
        let spec = spec_for(parents, vec![Some((c1, c2))]);
        let out = run_test_job(dfs, spec, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].decision, TestDecision::Undecided);
        assert_eq!(out[0].n, 60);
    }

    #[test]
    fn tiny_cluster_is_kept_not_undecided() {
        let dfs = write_blobs(false, 10, 9, 1 << 20);
        let truth = truth_centers(&dfs);
        let mut parents = CenterSet::new(2);
        parents.push(0, &truth[0]);
        let c1 = vec![truth[0][0] - 1.0, truth[0][1]];
        let c2 = vec![truth[0][0] + 1.0, truth[0][1]];
        let spec = spec_for(parents, vec![Some((c1, c2))]);
        for few in [true, false] {
            let out = run_test_job(dfs.clone(), spec.clone(), few);
            assert_eq!(out[0].decision, TestDecision::Normal, "few={few}");
        }
    }

    #[test]
    fn reducer_heap_is_charged_per_projection() {
        let dfs = write_blobs(false, 1000, 10, 1 << 20);
        let truth = truth_centers(&dfs);
        let mut parents = CenterSet::new(2);
        parents.push(0, &truth[0]);
        let c1 = vec![truth[0][0] - 1.0, truth[0][1]];
        let c2 = vec![truth[0][0] + 1.0, truth[0][1]];
        let spec = spec_for(parents, vec![Some((c1, c2))]);
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let r = runner
            .run(
                &TestClustersJob::new(spec),
                "pts",
                &JobConfig::with_reducers(1),
            )
            .unwrap();
        assert_eq!(
            r.counters.get(Counter::HeapPeakBytes),
            1000 * BYTES_PER_PROJECTION
        );
        assert_eq!(r.counters.get(Counter::Projections), 1000);
        assert_eq!(r.counters.get(Counter::AdTests), 1);
    }

    #[test]
    fn test_clusters_reducer_overflows_small_heap() {
        let dfs = write_blobs(false, 2000, 11, 1 << 20);
        let truth = truth_centers(&dfs);
        let mut parents = CenterSet::new(2);
        parents.push(0, &truth[0]);
        let c1 = vec![truth[0][0] - 1.0, truth[0][1]];
        let c2 = vec![truth[0][0] + 1.0, truth[0][1]];
        let spec = spec_for(parents, vec![Some((c1, c2))]);
        let cluster = ClusterConfig {
            heap_per_task: 2000 * BYTES_PER_PROJECTION / 2, // half of what's needed
            ..ClusterConfig::default()
        };
        let runner = JobRunner::new(dfs, cluster).unwrap();
        let err = runner
            .run(
                &TestClustersJob::new(spec),
                "pts",
                &JobConfig::with_reducers(1),
            )
            .unwrap_err();
        assert!(matches!(err, gmr_mapreduce::Error::HeapSpace { .. }));
    }
}
