//! `KMeansAndFindNewCenters` (Algorithm 2): the last k-means iteration
//! of a G-means round, fused with the selection of two candidate
//! centers per cluster for the *next* iteration.
//!
//! The mapper emits each point **twice**: once under its center id (the
//! k-means channel) and once under `id + OFFSET` (the candidate
//! channel). "This doubles the quantity of data to be shuffled … this
//! effect is largely mitigated by the use of a combiner" (§3.1): the
//! combiner folds the k-means channel into one partial sum and prunes
//! the candidate channel to two points per center per map task.
//!
//! The paper picks the two candidates randomly. A combiner must be
//! associative, so "random" is implemented as *hash-minimal*: each point
//! gets a pseudo-random priority `h(seed, coords)` and the two smallest
//! priorities win. Min-selection commutes with partial combining, and
//! the winning pair varies with the per-iteration seed exactly like a
//! random draw.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use gmr_mapreduce::prelude::*;

use crate::mr::centers::{CenterSet, CenterUpdate, ChannelKey};
use crate::mr::kmeans_job::{empty_centers_error, fold_point_sums, parse_point_or_skip, PointSum};

/// Output of the fused job.
#[derive(Clone, Debug, PartialEq)]
pub enum FindNewOutput {
    /// Refined center (the k-means channel).
    Update(CenterUpdate),
    /// Candidate next-iteration centers for one current center (the
    /// OFFSET channel). At most two points; fewer when the cluster has
    /// fewer than two distinct points.
    Candidates {
        /// The current center's id (offset already removed).
        id: i64,
        /// The winning candidate coordinates.
        points: Vec<Vec<f64>>,
    },
}

/// Pseudo-random selection priority of a point.
fn priority(seed: u64, coords: &[f64]) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    seed.hash(&mut h);
    for c in coords {
        c.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Keeps the two values with the smallest priorities (stable under
/// recombination: min of mins is the global min). Streams its input —
/// at most three candidates are resident at a time, so the reducer can
/// feed it values straight off the merge without collecting the group.
fn keep_two_minimal(seed: u64, values: impl IntoIterator<Item = PointSum>) -> Vec<PointSum> {
    let mut best: Vec<(u64, PointSum)> = Vec::with_capacity(3);
    for v in values {
        let p = priority(seed, &v.0);
        best.push((p, v));
        best.sort_by_key(|(p, _)| *p);
        best.truncate(2);
    }
    best.into_iter().map(|(_, v)| v).collect()
}

/// The fused job.
pub struct FindNewCentersJob {
    centers: Arc<CenterSet>,
    seed: u64,
}

impl FindNewCentersJob {
    /// Creates the job for the given current centers; `seed` randomizes
    /// the candidate picks per G-means iteration.
    pub fn new(centers: Arc<CenterSet>, seed: u64) -> Self {
        assert!(!centers.is_empty(), "needs at least one center");
        Self { centers, seed }
    }
}

/// Mapper of [`FindNewCentersJob`] (Algorithm 2 verbatim: "Emit twice").
pub struct FindNewCentersMapper {
    centers: Arc<CenterSet>,
    /// Assignments precomputed by the blocked kernel, drained one per
    /// `map_point` call; empty in text mode (scalar fallback).
    pending: std::collections::VecDeque<(i64, u64)>,
}

impl FindNewCentersMapper {
    fn process(
        &self,
        point: Vec<f64>,
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let (_, id, _, evals) = self
            .centers
            .nearest_with_cost(&point)
            .ok_or_else(|| empty_centers_error("KMeansAndFindNewCenters"))?;
        ctx.charge_distances(evals, self.centers.dim());
        out.emit(ChannelKey::Refine(id).encode(), (point.clone(), 1));
        out.emit(ChannelKey::Candidate(id).encode(), (point, 1));
        Ok(())
    }
}

impl Mapper for FindNewCentersMapper {
    type Key = i64;
    type Value = PointSum;

    fn map(
        &mut self,
        _offset: u64,
        line: &str,
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match parse_point_or_skip(line, self.centers.dim(), ctx) {
            Some(point) => self.process(point, out, ctx),
            None => Ok(()),
        }
    }
}

impl PointMapper for FindNewCentersMapper {
    fn map_point(
        &mut self,
        point: &[f64],
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        if let Some((id, evals)) = self.pending.pop_front() {
            ctx.charge_distances(evals, self.centers.dim());
            out.emit(ChannelKey::Refine(id).encode(), (point.to_vec(), 1));
            out.emit(ChannelKey::Candidate(id).encode(), (point.to_vec(), 1));
            return Ok(());
        }
        self.process(point.to_vec(), out, ctx)
    }

    fn prepare_block(
        &mut self,
        points: &[f64],
        norms: &[f64],
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        debug_assert!(self.pending.is_empty(), "undrained block");
        self.pending.clear();
        self.pending.extend(
            self.centers
                .nearest_block(points, norms)
                .into_iter()
                .map(|(_, id, _, evals)| (id, evals)),
        );
        Ok(())
    }
}

/// Reducer of [`FindNewCentersJob`]: demuxes the key's channel (the
/// paper's test against OFFSET, via [`ChannelKey::decode`]) — k-means
/// reduction on the refine channel, candidate selection on the other.
pub struct FindNewCentersReducer {
    seed: u64,
}

impl Reducer for FindNewCentersReducer {
    type Key = i64;
    type Value = PointSum;
    type Output = FindNewOutput;

    fn reduce(
        &mut self,
        key: i64,
        values: Values<'_, PointSum>,
        out: &mut Vec<FindNewOutput>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        match ChannelKey::decode(key) {
            ChannelKey::Candidate(id) => {
                let winners = keep_two_minimal(self.seed, values);
                out.push(FindNewOutput::Candidates {
                    id,
                    points: winners.into_iter().map(|(coords, _)| coords).collect(),
                });
            }
            ChannelKey::Refine(id) => {
                if let Some((sum, count)) = fold_point_sums(values) {
                    let inv = 1.0 / count as f64;
                    out.push(FindNewOutput::Update(CenterUpdate {
                        id,
                        coords: sum.iter().map(|s| s * inv).collect(),
                        count,
                    }));
                }
            }
        }
        Ok(())
    }
}

impl Job for FindNewCentersJob {
    type Key = i64;
    type Value = PointSum;
    type Output = FindNewOutput;
    type Mapper = FindNewCentersMapper;
    type Reducer = FindNewCentersReducer;

    fn name(&self) -> &str {
        "KMeansAndFindNewCenters"
    }

    fn create_mapper(&self) -> FindNewCentersMapper {
        FindNewCentersMapper {
            centers: Arc::clone(&self.centers),
            pending: std::collections::VecDeque::new(),
        }
    }

    fn create_reducer(&self) -> FindNewCentersReducer {
        FindNewCentersReducer { seed: self.seed }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    /// "The combiner and reducer test the value of the key. If it is
    /// larger than the predefined offset, they keep only 2 new centers
    /// per cluster. Otherwise they perform classical k-means reduction."
    fn combine(&self, key: &i64, values: Vec<PointSum>) -> Vec<PointSum> {
        match ChannelKey::decode(*key) {
            ChannelKey::Candidate(_) => keep_two_minimal(self.seed, values),
            ChannelKey::Refine(_) => fold_point_sums(values).into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::format_point;
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;
    use gmr_mapreduce::runtime::JobRunner;

    fn run_job(
        pts: &[Vec<f64>],
        centers: CenterSet,
        seed: u64,
        block: usize,
    ) -> gmr_mapreduce::runtime::JobResult<FindNewOutput> {
        let dfs = Arc::new(Dfs::new(block));
        dfs.put_lines("pts", pts.iter().map(|p| format_point(p)))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let job = FindNewCentersJob::new(Arc::new(centers), seed);
        runner
            .run(&job, "pts", &JobConfig::with_reducers(3))
            .unwrap()
    }

    fn one_center_line() -> (Vec<Vec<f64>>, CenterSet) {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut centers = CenterSet::new(1);
        centers.push(0, &[5.0]);
        (pts, centers)
    }

    #[test]
    fn emits_update_and_candidates_per_center() {
        let (pts, centers) = one_center_line();
        let result = run_job(&pts, centers, 7, 1 << 20);
        let mut updates = 0;
        let mut cands = 0;
        for o in &result.output {
            match o {
                FindNewOutput::Update(u) => {
                    updates += 1;
                    assert_eq!(u.id, 0);
                    assert_eq!(u.count, 20);
                    assert!((u.coords[0] - 9.5).abs() < 1e-12); // mean of 0..19
                }
                FindNewOutput::Candidates { id, points } => {
                    cands += 1;
                    assert_eq!(*id, 0);
                    assert_eq!(points.len(), 2);
                    // Candidates are actual data points.
                    for p in points {
                        assert!(p[0].fract() == 0.0 && (0.0..20.0).contains(&p[0]));
                    }
                }
            }
        }
        assert_eq!((updates, cands), (1, 1));
    }

    #[test]
    fn candidates_are_split_invariant() {
        // The hash-min selection must pick the same two points whether
        // the file lands in one split or many (combiner associativity).
        let (pts, centers) = one_center_line();
        let single = run_job(&pts, centers.clone(), 7, 1 << 20);
        let many = run_job(&pts, centers, 7, 16);
        let get_cands = |r: &gmr_mapreduce::runtime::JobResult<FindNewOutput>| {
            r.output
                .iter()
                .find_map(|o| match o {
                    FindNewOutput::Candidates { points, .. } => Some(points.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(get_cands(&single), get_cands(&many));
    }

    #[test]
    fn different_seeds_pick_different_candidates() {
        let (pts, centers) = one_center_line();
        let a = run_job(&pts, centers.clone(), 1, 1 << 20);
        let b = run_job(&pts, centers, 2, 1 << 20);
        let get = |r: &gmr_mapreduce::runtime::JobResult<FindNewOutput>| {
            r.output
                .iter()
                .find_map(|o| match o {
                    FindNewOutput::Candidates { points, .. } => Some(points.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(get(&a), get(&b));
    }

    #[test]
    fn shuffle_counts_double_then_combine() {
        let (pts, centers) = one_center_line();
        let result = run_job(&pts, centers, 7, 1 << 20);
        // 20 points, emitted twice.
        assert_eq!(
            result.counters.get(Counter::MapOutputRecords),
            40,
            "each point must be emitted twice"
        );
        // Single split: combiner leaves 1 sum + 2 candidates.
        assert_eq!(result.counters.get(Counter::ReduceInputRecords), 3);
    }

    #[test]
    fn single_point_cluster_yields_one_candidate() {
        let pts = vec![vec![0.0], vec![100.0]];
        let mut centers = CenterSet::new(1);
        centers.push(0, &[0.0]);
        centers.push(1, &[100.0]);
        let result = run_job(&pts, centers, 3, 1 << 20);
        for o in &result.output {
            if let FindNewOutput::Candidates { points, .. } = o {
                assert_eq!(points.len(), 1, "one-point cluster has one candidate");
            }
        }
    }

    #[test]
    fn keep_two_minimal_is_associative() {
        let vals: Vec<PointSum> = (0..10).map(|i| (vec![i as f64], 1)).collect();
        let all = keep_two_minimal(9, vals.clone());
        // Partition into chunks, combine per chunk, then combine winners.
        let (a, b) = vals.split_at(4);
        let partial: Vec<PointSum> = keep_two_minimal(9, a.to_vec())
            .into_iter()
            .chain(keep_two_minimal(9, b.to_vec()))
            .collect();
        let recombined = keep_two_minimal(9, partial);
        assert_eq!(all, recombined);
    }
}
