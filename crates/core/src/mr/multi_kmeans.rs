//! Multi-k-means (Algorithm 6): one MapReduce job per Lloyd iteration
//! that updates the centers for **every** k in `[k_min, k_max]`
//! simultaneously.
//!
//! This is the baseline the paper compares G-means against: "all
//! possible values of k can be tested in a single round, thus vastly
//! reducing the number of iterations and dataset reads" — at the price
//! of `O(n·k_max²)` distance computations per iteration, which is what
//! Table 2 and Figure 3 measure.
//!
//! The driver is a [`MultiKAlgo`] state machine on the generic
//! [`Engine`]; [`MultiKMeans`] is the thin façade keeping the original
//! constructor-style API.

use std::collections::HashMap;
use std::sync::Arc;

use gmr_linalg::Dataset;
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::counters::Counters;
use gmr_mapreduce::prelude::*;
use gmr_mapreduce::writable::Writable;

use crate::mr::centers::{apply_updates, CenterSet, CenterUpdate};
use crate::mr::engine::{
    CenterSetSnap, Engine, EngineCtx, ExecutionMode, IterativeAlgorithm, JobOutputs, PlannedJob,
    RunStats, SegmentStats, Step, TimingSnap,
};
use crate::mr::kmeans_job::{empty_centers_error, fold_point_sums, parse_point_or_skip, PointSum};

/// Intermediate key: `(k-index, center id)` — the paper's `k_centerid`
/// composite key, kept numeric for cheap shuffle sorting.
pub type MultiKey = (u32, u32);

/// The multi-k-means job over one family of center sets.
pub struct MultiKMeansJob {
    sets: Arc<Vec<CenterSet>>,
}

impl MultiKMeansJob {
    /// Creates the job.
    pub fn new(sets: Arc<Vec<CenterSet>>) -> Self {
        assert!(!sets.is_empty(), "need at least one center set");
        assert!(
            sets.iter().all(|s| !s.is_empty()),
            "every center set needs centers"
        );
        Self { sets }
    }
}

/// Mapper: "for k = k_min; k ≤ k_max; k += k_step: find nearest center,
/// emit(k_centerid ⇒ point)".
pub struct MultiKMeansMapper {
    sets: Arc<Vec<CenterSet>>,
    /// Per-point `(id, evals)` rows — one entry per center set — from
    /// the blocked kernel, drained one row per `map_point` call.
    pending: std::collections::VecDeque<Vec<(i64, u64)>>,
}

impl Mapper for MultiKMeansMapper {
    type Key = MultiKey;
    type Value = PointSum;

    fn map(
        &mut self,
        _offset: u64,
        line: &str,
        out: &mut MapOutput<'_, MultiKey, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match parse_point_or_skip(line, self.sets[0].dim(), ctx) {
            Some(point) => self.map_point(&point, out, ctx),
            None => Ok(()),
        }
    }
}

impl PointMapper for MultiKMeansMapper {
    fn map_point(
        &mut self,
        point: &[f64],
        out: &mut MapOutput<'_, MultiKey, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let dim = self.sets[0].dim();
        if let Some(row) = self.pending.pop_front() {
            for (ki, (id, evals)) in row.into_iter().enumerate() {
                ctx.charge_distances(evals, dim);
                out.emit((ki as u32, id as u32), (point.to_vec(), 1));
            }
            return Ok(());
        }
        for (ki, set) in self.sets.iter().enumerate() {
            let (_, id, _, evals) = set
                .nearest_with_cost(point)
                .ok_or_else(|| empty_centers_error("MultiKMeans"))?;
            ctx.charge_distances(evals, dim);
            out.emit((ki as u32, id as u32), (point.to_vec(), 1));
        }
        Ok(())
    }

    fn prepare_block(
        &mut self,
        points: &[f64],
        norms: &[f64],
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        debug_assert!(self.pending.is_empty(), "undrained block");
        self.pending.clear();
        let n = norms.len();
        let mut rows: Vec<Vec<(i64, u64)>> = vec![Vec::with_capacity(self.sets.len()); n];
        for set in self.sets.iter() {
            let block = set.nearest_block(points, norms);
            if block.len() != n {
                // Degenerate (empty) set: leave the queue empty so the
                // scalar path reports the typed error per point.
                return Ok(());
            }
            for (row, (_, id, _, evals)) in rows.iter_mut().zip(block) {
                row.push((id, evals));
            }
        }
        self.pending.extend(rows);
        Ok(())
    }
}

/// Reducer: classical centroid mean per `(k, center)` key.
pub struct MultiKMeansReducer;

impl Reducer for MultiKMeansReducer {
    type Key = MultiKey;
    type Value = PointSum;
    type Output = (u32, CenterUpdate);

    fn reduce(
        &mut self,
        key: MultiKey,
        values: Values<'_, PointSum>,
        out: &mut Vec<(u32, CenterUpdate)>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        if let Some((sum, count)) = fold_point_sums(values) {
            let inv = 1.0 / count as f64;
            out.push((
                key.0,
                CenterUpdate {
                    id: key.1 as i64,
                    coords: sum.iter().map(|s| s * inv).collect(),
                    count,
                },
            ));
        }
        Ok(())
    }
}

impl Job for MultiKMeansJob {
    type Key = MultiKey;
    type Value = PointSum;
    type Output = (u32, CenterUpdate);
    type Mapper = MultiKMeansMapper;
    type Reducer = MultiKMeansReducer;

    fn name(&self) -> &str {
        "MultiKMeans"
    }

    fn create_mapper(&self) -> MultiKMeansMapper {
        MultiKMeansMapper {
            sets: Arc::clone(&self.sets),
            pending: std::collections::VecDeque::new(),
        }
    }

    fn create_reducer(&self) -> MultiKMeansReducer {
        MultiKMeansReducer
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &MultiKey, values: Vec<PointSum>) -> Vec<PointSum> {
        fold_point_sums(values).into_iter().collect()
    }
}

/// One fitted model of the MapReduce multi-k family.
#[derive(Clone, Debug)]
pub struct MRKModel {
    /// Number of clusters of this model.
    pub k: usize,
    /// Fitted centers.
    pub centers: Dataset,
    /// Points per center after the final iteration.
    pub counts: Vec<u64>,
}

/// Result of a full multi-k-means run.
#[derive(Debug)]
pub struct MultiKMeansResult {
    /// One model per tested k, ascending.
    pub models: Vec<MRKModel>,
    /// Timing of each Lloyd iteration's job.
    pub iteration_timings: Vec<JobTiming>,
    /// Counters accumulated over all jobs.
    pub counters: Counters,
    /// Total simulated seconds.
    pub simulated_secs: f64,
    /// Real wall-clock seconds.
    pub wall_secs: f64,
}

impl MultiKMeansResult {
    /// Average simulated seconds of a single iteration — the quantity
    /// Table 2 reports.
    pub fn avg_iteration_simulated_secs(&self) -> f64 {
        if self.iteration_timings.is_empty() {
            0.0
        } else {
            self.iteration_timings
                .iter()
                .map(|t| t.simulated_secs)
                .sum::<f64>()
                / self.iteration_timings.len() as f64
        }
    }
}

/// The sweep's complete loop state at an iteration boundary.
pub struct MState {
    /// Completed Lloyd iterations.
    iteration: usize,
    sets: Vec<CenterSet>,
    counts: Vec<Vec<u64>>,
    timings: Vec<JobTiming>,
}

/// Journal wire form of [`MState`] (run totals travel in the engine's
/// frame, not here).
pub struct MultiKMeansSnapshot {
    iteration: u64,
    sets: Vec<CenterSetSnap>,
    counts: Vec<Vec<u64>>,
    timings: Vec<TimingSnap>,
}

impl Writable for MultiKMeansSnapshot {
    fn write(&self, buf: &mut Vec<u8>) {
        self.iteration.write(buf);
        self.sets.write(buf);
        self.counts.write(buf);
        self.timings.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            iteration: u64::read(buf)?,
            sets: Vec::read(buf)?,
            counts: Vec::read(buf)?,
            timings: Vec::read(buf)?,
        })
    }
}

/// The multi-k sweep as a pure state machine on the [`Engine`]: one
/// fused job per Lloyd iteration, every iteration a checkpointable
/// boundary. Task failures propagate (the sweep has no partial result
/// worth degrading to).
pub struct MultiKAlgo {
    ks: Vec<usize>,
    iterations: usize,
    seed: u64,
}

impl IterativeAlgorithm for MultiKAlgo {
    type State = MState;
    type Snapshot = MultiKMeansSnapshot;
    type Output = MultiKMeansResult;

    const NAME: &'static str = "MultiKMeans";
    const MAGIC: u32 = 0x4d4b_4e01;

    fn fresh(&self, ctx: &mut EngineCtx<'_>) -> Result<MState> {
        let k_max = *self.ks.last().expect("nonempty ks");
        // Serial init: one reservoir sample feeds every k (centers for
        // k are the first k sampled points).
        let sample = ctx.sample(k_max, self.seed)?;
        let dim = sample.dim();
        let mut sets: Vec<CenterSet> = Vec::with_capacity(self.ks.len());
        for &k in &self.ks {
            let mut set = CenterSet::new(dim);
            for i in 0..k {
                set.push(i as i64, sample.row(i % sample.len()));
            }
            sets.push(set);
        }
        let counts: Vec<Vec<u64>> = sets.iter().map(|s| vec![0; s.len()]).collect();
        Ok(MState {
            iteration: 0,
            sets,
            counts,
            timings: Vec::with_capacity(self.iterations),
        })
    }

    fn dim(&self, state: &MState) -> Result<usize> {
        state
            .sets
            .first()
            .map(|s| s.dim())
            .ok_or_else(|| Error::Corrupt("multi-k snapshot has no center sets".into()))
    }

    fn done(&self, state: &MState) -> bool {
        state.iteration >= self.iterations
    }

    fn seq(&self, state: &MState) -> u64 {
        state.iteration as u64
    }

    fn plan(&self, state: &mut MState, ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>> {
        let job_sets: Vec<CenterSet> = state.sets.iter().map(|s| ctx.prepare(s.clone())).collect();
        let job = MultiKMeansJob::new(Arc::new(job_sets));
        let reducers = ctx.reduce_tasks(self.ks.iter().sum::<usize>());
        Ok(vec![PlannedJob::new(job, reducers)])
    }

    fn apply(
        &self,
        state: &mut MState,
        mut outputs: Vec<JobOutputs>,
        _seg: &SegmentStats,
    ) -> Result<Step> {
        let (output, timing) = outputs.remove(0).into_parts::<(u32, CenterUpdate)>();
        let mut per_k: HashMap<u32, Vec<CenterUpdate>> = HashMap::new();
        for (ki, update) in output {
            per_k.entry(ki).or_default().push(update);
        }
        for (ki, set) in state.sets.iter_mut().enumerate() {
            let updates = per_k.remove(&(ki as u32)).unwrap_or_default();
            let (next, c) = apply_updates(set, &updates);
            *set = next;
            state.counts[ki] = c;
        }
        state.timings.push(timing);
        state.iteration += 1;
        Ok(Step::Boundary)
    }

    fn snapshot(&self, state: &MState) -> MultiKMeansSnapshot {
        MultiKMeansSnapshot {
            iteration: state.iteration as u64,
            sets: state.sets.iter().map(CenterSetSnap::from_set).collect(),
            counts: state.counts.clone(),
            timings: state.timings.iter().map(TimingSnap::from_timing).collect(),
        }
    }

    fn restore(&self, snap: MultiKMeansSnapshot) -> Result<MState> {
        let sets = snap
            .sets
            .iter()
            .map(CenterSetSnap::to_set)
            .collect::<Result<Vec<_>>>()?;
        Ok(MState {
            iteration: snap.iteration as usize,
            sets,
            counts: snap.counts,
            timings: snap.timings.iter().map(TimingSnap::to_timing).collect(),
        })
    }

    fn finish(
        &self,
        state: MState,
        _ctx: &mut EngineCtx<'_>,
        stats: RunStats,
    ) -> Result<MultiKMeansResult> {
        let models = state
            .sets
            .iter()
            .zip(&self.ks)
            .zip(&state.counts)
            .map(|((set, &k), c)| MRKModel {
                k,
                centers: set.to_dataset(),
                counts: c.clone(),
            })
            .collect();
        Ok(MultiKMeansResult {
            models,
            iteration_timings: state.timings,
            counters: stats.counters,
            simulated_secs: stats.simulated_secs,
            wall_secs: stats.wall_secs,
        })
    }
}

/// Driver: initializes a center set per k and iterates the fused job.
pub struct MultiKMeans {
    runner: JobRunner,
    ks: Vec<usize>,
    iterations: usize,
    seed: u64,
    mode: ExecutionMode,
    kd_index: bool,
    pruning: bool,
    tile_workers: usize,
    checkpoint_dir: Option<String>,
}

impl MultiKMeans {
    /// Tests every k in `k_min..=k_max` with the given step.
    ///
    /// # Panics
    /// Panics on an empty k range or zero step/iterations.
    pub fn new(
        runner: JobRunner,
        k_min: usize,
        k_max: usize,
        k_step: usize,
        iterations: usize,
        seed: u64,
    ) -> Self {
        assert!(k_min > 0 && k_min <= k_max, "bad k range");
        assert!(k_step > 0, "k_step must be positive");
        assert!(iterations > 0, "need at least one iteration");
        let ks: Vec<usize> = (k_min..=k_max).step_by(k_step).collect();
        Self {
            runner,
            ks,
            iterations,
            seed,
            mode: ExecutionMode::OnDisk,
            kd_index: false,
            pruning: false,
            tile_workers: 1,
            checkpoint_dir: None,
        }
    }

    /// Splits every cached map block's kernel work across `workers`
    /// deterministic parallel tiles. Results are byte-identical for
    /// every value; only wall time changes.
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }

    /// Enables the k-d-tree nearest-center index inside the job.
    pub fn with_kd_index(mut self, kd_index: bool) -> Self {
        self.kd_index = kd_index;
        self
    }

    /// Enables triangle-inequality center pruning inside the job
    /// (ignored when the k-d index is also enabled, which subsumes it).
    /// Like the k-d index, pruning changes the charged evaluation counts
    /// and therefore the simulated cost — it is opt-in.
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects disk-based (Hadoop-style) or cached (Spark-style)
    /// execution. See [`ExecutionMode`].
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The tested k values.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// Journals sweep state into a DFS checkpoint directory after every
    /// iteration, enabling [`MultiKMeans::resume`].
    pub fn with_checkpoints(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    fn engine(&self) -> Engine {
        let engine = Engine::new(self.runner.clone())
            .with_execution_mode(self.mode)
            .with_kd_index(self.kd_index)
            .with_pruning(self.pruning)
            .with_tile_workers(self.tile_workers);
        match &self.checkpoint_dir {
            Some(dir) => engine.with_checkpoints(dir.clone()),
            None => engine,
        }
    }

    fn algo(&self) -> MultiKAlgo {
        MultiKAlgo {
            ks: self.ks.clone(),
            iterations: self.iterations,
            seed: self.seed,
        }
    }

    /// Runs the sweep over the DFS text file at `input`.
    pub fn run(&self, input: &str) -> Result<MultiKMeansResult> {
        self.engine().run(&self.algo(), input)
    }

    /// Resumes an interrupted checkpointed sweep from its newest intact
    /// snapshot, continuing to a result bit-identical to an
    /// uninterrupted [`MultiKMeans::run`]. Falls back to a fresh run
    /// when the journal holds no valid checkpoint. Requires
    /// [`MultiKMeans::with_checkpoints`].
    pub fn resume(&self, input: &str) -> Result<MultiKMeansResult> {
        self.engine().resume(&self.algo(), input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{format_point, GaussianMixture};
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;

    fn runner_with_blobs(k_real: usize, n: usize, seed: u64) -> (JobRunner, Dataset) {
        let d = GaussianMixture::paper_r10(n, k_real, seed)
            .generate()
            .unwrap();
        let dfs = Arc::new(Dfs::new(64 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        (
            JobRunner::new(dfs, ClusterConfig::default()).unwrap(),
            d.points,
        )
    }

    #[test]
    fn sweep_produces_model_per_k() {
        let (runner, data) = runner_with_blobs(4, 1200, 3);
        let mk = MultiKMeans::new(runner, 1, 6, 1, 5, 10);
        let r = mk.run("pts").unwrap();
        assert_eq!(r.models.len(), 6);
        for (i, m) in r.models.iter().enumerate() {
            assert_eq!(m.k, i + 1);
            assert_eq!(m.centers.len(), m.k);
            assert_eq!(m.counts.iter().sum::<u64>(), 1200, "k={} loses points", m.k);
        }
        assert_eq!(r.iteration_timings.len(), 5);
        assert!(r.avg_iteration_simulated_secs() > 0.0);
        // WCSS at k=4 (true k) must crush WCSS at k=1.
        let w1 = crate::eval::wcss(&data, &r.models[0].centers);
        let w4 = crate::eval::wcss(&data, &r.models[3].centers);
        assert!(w4 < w1 / 10.0, "w1={w1} w4={w4}");
    }

    #[test]
    fn distance_count_is_sum_over_ks() {
        let (runner, _) = runner_with_blobs(2, 300, 5);
        let mk = MultiKMeans::new(runner, 1, 4, 1, 1, 2);
        let r = mk.run("pts").unwrap();
        // Per point per iteration: 1+2+3+4 = 10 distance computations.
        assert_eq!(
            r.counters.get(Counter::DistanceComputations),
            300 * 10,
            "O(n·Σk) distances"
        );
    }

    #[test]
    fn step_is_respected() {
        let (runner, _) = runner_with_blobs(2, 200, 6);
        let mk = MultiKMeans::new(runner, 2, 10, 4, 1, 1);
        assert_eq!(mk.ks(), &[2, 6, 10]);
        let r = mk.run("pts").unwrap();
        assert_eq!(r.models.len(), 3);
    }

    #[test]
    #[should_panic(expected = "bad k range")]
    fn bad_range_panics() {
        let (runner, _) = runner_with_blobs(2, 50, 7);
        MultiKMeans::new(runner, 0, 4, 1, 1, 1);
    }
}
