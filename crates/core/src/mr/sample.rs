//! Serial point sampling from the DFS.
//!
//! `PickInitialCenters` is "a serial implementation, that picks initial
//! centers at random" (§3). Reading the dataset once to reservoir-sample
//! a handful of points is exactly one dataset read — the driver charges
//! it as such.

use gmr_datagen::parse_point;
use gmr_linalg::Dataset;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Reservoir-samples `count` points from a DFS text file (one dataset
/// read). Returns fewer points when the file is smaller than `count`.
///
/// Malformed rows — unparsable lines and non-finite coordinates — are
/// skipped, not fatal, mirroring the mappers' bad-record quarantine;
/// skipped rows touch neither the reservoir count nor the RNG stream,
/// so a clean dataset samples identically with or without garbage rows
/// interleaved. When the file mixes dimensions, the sample is filtered
/// to the modal (most frequent) dimension.
pub fn sample_points(dfs: &Arc<Dfs>, path: &str, count: usize, seed: u64) -> Result<Dataset> {
    assert!(count > 0, "sample count must be positive");
    let splits = dfs.splits(path)?;
    dfs.begin_dataset_read();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<Vec<f64>> = Vec::with_capacity(count);
    let mut seen = 0usize;
    let mut dim_counts: HashMap<usize, u64> = HashMap::new();
    for split in &splits {
        dfs.charge_split_read(split);
        for (_, line) in split.lines() {
            let Ok(point) = parse_point(line) else {
                continue;
            };
            if point.is_empty() || point.iter().any(|c| !c.is_finite()) {
                continue;
            }
            *dim_counts.entry(point.len()).or_insert(0) += 1;
            seen += 1;
            if reservoir.len() < count {
                reservoir.push(point);
            } else {
                let j = rng.random_range(0..seen);
                if j < count {
                    reservoir[j] = point;
                }
            }
        }
    }
    let Some((&dim, _)) = dim_counts
        .iter()
        .max_by_key(|&(&d, &n)| (n, std::cmp::Reverse(d)))
    else {
        return Err(Error::Config(format!("no parsable points in {path}")));
    };
    reservoir.retain(|p| p.len() == dim);
    if reservoir.is_empty() {
        return Err(Error::Corrupt(format!(
            "sample of {path} holds no points of the modal dimension {dim}"
        )));
    }
    let mut ds = Dataset::with_capacity(dim, reservoir.len());
    for p in &reservoir {
        ds.push(p);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(n: usize) -> Arc<Dfs> {
        let dfs = Arc::new(Dfs::new(256));
        dfs.put_lines("pts", (0..n).map(|i| format!("{i} {}", i * 2)))
            .unwrap();
        dfs
    }

    #[test]
    fn samples_requested_count() {
        let dfs = fs_with(1000);
        let s = sample_points(&dfs, "pts", 10, 1).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.dim(), 2);
        // Sampled rows are real data rows (y = 2x).
        for row in s.rows() {
            assert_eq!(row[1], row[0] * 2.0);
        }
    }

    #[test]
    fn small_file_returns_everything() {
        let dfs = fs_with(5);
        let s = sample_points(&dfs, "pts", 100, 1).unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn counts_as_one_dataset_read() {
        let dfs = fs_with(100);
        sample_points(&dfs, "pts", 3, 1).unwrap();
        assert_eq!(dfs.stats().dataset_reads, 1);
    }

    #[test]
    fn deterministic_per_seed_and_spread_out() {
        let dfs = fs_with(10_000);
        let a = sample_points(&dfs, "pts", 20, 9).unwrap();
        let b = sample_points(&dfs, "pts", 20, 9).unwrap();
        assert_eq!(a, b);
        let c = sample_points(&dfs, "pts", 20, 10).unwrap();
        assert_ne!(a, c);
        // A uniform sample of 20 from 10k must not all come from the
        // first 1000 rows.
        assert!(a.rows().any(|r| r[0] > 1000.0));
    }

    #[test]
    fn bad_records_do_not_perturb_the_sample() {
        // Garbage rows are skipped without touching the RNG stream, so
        // the sample is identical to the clean file's.
        let clean = fs_with(500);
        let dirty = Arc::new(Dfs::new(256));
        dirty
            .put_lines(
                "pts",
                (0..500).flat_map(|i| {
                    let mut rows = vec![format!("{i} {}", i * 2)];
                    if i % 50 == 0 {
                        rows.push("not a point".to_string());
                        rows.push(format!("{i} nan"));
                    }
                    rows
                }),
            )
            .unwrap();
        let a = sample_points(&clean, "pts", 10, 7).unwrap();
        let b = sample_points(&dirty, "pts", 10, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_dimensions_resolve_to_the_modal_one() {
        let dfs = Arc::new(Dfs::new(256));
        dfs.put_lines(
            "pts",
            (0..100).map(|i| {
                if i % 10 == 0 {
                    format!("{i} {i} {i}")
                } else {
                    format!("{i} {}", i * 2)
                }
            }),
        )
        .unwrap();
        let s = sample_points(&dfs, "pts", 20, 3).unwrap();
        assert_eq!(s.dim(), 2);
        assert!(s.len() <= 20);
    }

    #[test]
    fn missing_file_and_empty_file_error() {
        let dfs = Arc::new(Dfs::new(64));
        assert!(sample_points(&dfs, "nope", 3, 0).is_err());
        let w = dfs.create("empty", false).unwrap();
        w.close();
        assert!(sample_points(&dfs, "empty", 3, 0).is_err());
    }
}
