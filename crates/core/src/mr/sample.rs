//! Serial point sampling from the DFS.
//!
//! `PickInitialCenters` is "a serial implementation, that picks initial
//! centers at random" (§3). Reading the dataset once to reservoir-sample
//! a handful of points is exactly one dataset read — the driver charges
//! it as such.

use gmr_datagen::parse_point;
use gmr_linalg::Dataset;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Reservoir-samples `count` points from a DFS text file (one dataset
/// read). Returns fewer points when the file is smaller than `count`.
pub fn sample_points(dfs: &Arc<Dfs>, path: &str, count: usize, seed: u64) -> Result<Dataset> {
    assert!(count > 0, "sample count must be positive");
    let splits = dfs.splits(path)?;
    dfs.begin_dataset_read();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<Vec<f64>> = Vec::with_capacity(count);
    let mut seen = 0usize;
    for split in &splits {
        dfs.charge_split_read(split);
        for (_, line) in split.lines() {
            let point = parse_point(line)?;
            seen += 1;
            if reservoir.len() < count {
                reservoir.push(point);
            } else {
                let j = rng.random_range(0..seen);
                if j < count {
                    reservoir[j] = point;
                }
            }
        }
    }
    if reservoir.is_empty() {
        return Err(Error::Config(format!("no points in {path}")));
    }
    let dim = reservoir[0].len();
    let mut ds = Dataset::with_capacity(dim, reservoir.len());
    for p in &reservoir {
        if p.len() != dim {
            return Err(Error::Corrupt(format!(
                "mixed dimensions in {path}: {} vs {dim}",
                p.len()
            )));
        }
        ds.push(p);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(n: usize) -> Arc<Dfs> {
        let dfs = Arc::new(Dfs::new(256));
        dfs.put_lines("pts", (0..n).map(|i| format!("{i} {}", i * 2)))
            .unwrap();
        dfs
    }

    #[test]
    fn samples_requested_count() {
        let dfs = fs_with(1000);
        let s = sample_points(&dfs, "pts", 10, 1).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.dim(), 2);
        // Sampled rows are real data rows (y = 2x).
        for row in s.rows() {
            assert_eq!(row[1], row[0] * 2.0);
        }
    }

    #[test]
    fn small_file_returns_everything() {
        let dfs = fs_with(5);
        let s = sample_points(&dfs, "pts", 100, 1).unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn counts_as_one_dataset_read() {
        let dfs = fs_with(100);
        sample_points(&dfs, "pts", 3, 1).unwrap();
        assert_eq!(dfs.stats().dataset_reads, 1);
    }

    #[test]
    fn deterministic_per_seed_and_spread_out() {
        let dfs = fs_with(10_000);
        let a = sample_points(&dfs, "pts", 20, 9).unwrap();
        let b = sample_points(&dfs, "pts", 20, 9).unwrap();
        assert_eq!(a, b);
        let c = sample_points(&dfs, "pts", 20, 10).unwrap();
        assert_ne!(a, c);
        // A uniform sample of 20 from 10k must not all come from the
        // first 1000 rows.
        assert!(a.rows().any(|r| r[0] > 1000.0));
    }

    #[test]
    fn missing_file_and_empty_file_error() {
        let dfs = Arc::new(Dfs::new(64));
        assert!(sample_points(&dfs, "nope", 3, 0).is_err());
        let w = dfs.create("empty", false).unwrap();
        w.close();
        assert!(sample_points(&dfs, "empty", 3, 0).is_err());
    }
}
