//! Shared center-set state distributed to map tasks.
//!
//! Hadoop jobs ship the current centers to every mapper through the
//! distributed cache; here the job object holds an `Arc<CenterSet>` and
//! each mapper clones the handle in `create_mapper`. Center ids are
//! `i64` — the paper explicitly prefers integer keys over text ("sorting
//! text keys requires more processing than simple integer values",
//! §3.1) — and the candidate-center channel of `KMeansAndFindNewCenters`
//! is multiplexed by adding [`OFFSET`] to the id.

use gmr_linalg::{nearest_center_flat, Dataset, KdTree};
use std::collections::HashMap;
use std::sync::Arc;

/// The id offset separating candidate-center keys from refine-center
/// keys: "as the type of center id is a Java Long, we use an offset
/// value equal to half the largest possible value of a Java Long. The
/// value of OFFSET is thus 2⁶²" (§3.1).
pub const OFFSET: i64 = 1 << 62;

/// An ordered set of centers with stable ids.
///
/// Nearest-center lookup defaults to the linear scan the paper's
/// implementation performs (`O(k)` distance computations per point —
/// the unit of its §4 cost model). Calling [`CenterSet::with_kd_index`]
/// attaches an exact k-d tree (the mrkd-tree acceleration §2 cites);
/// lookups then evaluate far fewer distances and the cost accounting
/// charges the *actual* evaluation count.
#[derive(Clone, Debug, Default)]
pub struct CenterSet {
    dim: usize,
    ids: Vec<i64>,
    flat: Vec<f64>,
    by_id: HashMap<i64, usize>,
    index: Option<Arc<KdTree>>,
}

impl PartialEq for CenterSet {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; equality is about the centers.
        self.dim == other.dim && self.ids == other.ids && self.flat == other.flat
    }
}

impl CenterSet {
    /// An empty set for centers in `R^dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            ids: Vec::new(),
            flat: Vec::new(),
            by_id: HashMap::new(),
            index: None,
        }
    }

    /// Builds a set from a dataset, assigning ids `0..len`.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let mut set = Self::new(ds.dim());
        for (i, row) in ds.rows().enumerate() {
            set.push(i as i64, row);
        }
        set
    }

    /// Appends a center.
    ///
    /// # Panics
    /// Panics on dimension mismatch, duplicate id, or id at/above
    /// [`OFFSET`] (those ids are reserved for the candidate channel).
    pub fn push(&mut self, id: i64, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "dimension mismatch");
        assert!(
            (0..OFFSET).contains(&id),
            "center id {id} outside [0, OFFSET)"
        );
        let idx = self.ids.len();
        let prev = self.by_id.insert(id, idx);
        assert!(prev.is_none(), "duplicate center id {id}");
        self.ids.push(id);
        self.flat.extend_from_slice(coords);
        self.index = None; // centers changed; any index is stale
    }

    /// Builds (or rebuilds) the k-d index over the current centers.
    /// Subsequent [`CenterSet::nearest_with_cost`] calls use it.
    ///
    /// # Panics
    /// Panics when the set is empty.
    pub fn with_kd_index(mut self) -> Self {
        assert!(!self.is_empty(), "cannot index an empty center set");
        self.index = Some(Arc::new(KdTree::build(&self.flat, self.dim)));
        self
    }

    /// True when a k-d index is attached.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set holds no centers.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Id of the center at `idx`.
    pub fn id(&self, idx: usize) -> i64 {
        self.ids[idx]
    }

    /// Coordinates of the center at `idx`.
    pub fn coords(&self, idx: usize) -> &[f64] {
        &self.flat[idx * self.dim..(idx + 1) * self.dim]
    }

    /// Index of the center with the given id.
    pub fn index_of(&self, id: i64) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Iterates `(id, coords)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[f64])> {
        self.ids
            .iter()
            .copied()
            .zip(self.flat.chunks_exact(self.dim))
    }

    /// Nearest center to `point`: `(index, id, squared_distance)`.
    pub fn nearest(&self, point: &[f64]) -> Option<(usize, i64, f64)> {
        self.nearest_with_cost(point)
            .map(|(idx, id, d2, _)| (idx, id, d2))
    }

    /// Nearest center plus the number of distance evaluations performed
    /// — `k` for the linear scan, usually far fewer with a k-d index.
    pub fn nearest_with_cost(&self, point: &[f64]) -> Option<(usize, i64, f64, u64)> {
        if self.is_empty() {
            return None;
        }
        match &self.index {
            Some(tree) => {
                let q = tree.nearest(point);
                Some((q.index, self.ids[q.index], q.dist2, q.evaluations as u64))
            }
            None => nearest_center_flat(point, &self.flat, self.dim)
                .map(|(idx, d2)| (idx, self.ids[idx], d2, self.ids.len() as u64)),
        }
    }

    /// The centers as a [`Dataset`] (ids dropped, order preserved).
    pub fn to_dataset(&self) -> Dataset {
        Dataset::from_flat(self.dim, self.flat.clone())
    }
}

/// One refined center coming out of a k-means reducer.
#[derive(Clone, Debug, PartialEq)]
pub struct CenterUpdate {
    /// Center id.
    pub id: i64,
    /// New position (the mean of assigned points).
    pub coords: Vec<f64>,
    /// Number of points that contributed.
    pub count: u64,
}

/// Applies reducer updates to a center set: updated ids move to their
/// new position; ids without an update keep their old position with a
/// count of zero (the empty-cluster convention). Returns the new set and
/// the per-center counts, aligned with the set's order.
pub fn apply_updates(current: &CenterSet, updates: &[CenterUpdate]) -> (CenterSet, Vec<u64>) {
    let by_id: HashMap<i64, &CenterUpdate> = updates.iter().map(|u| (u.id, u)).collect();
    let mut next = CenterSet::new(current.dim());
    let mut counts = Vec::with_capacity(current.len());
    for (id, coords) in current.iter() {
        match by_id.get(&id) {
            Some(u) => {
                next.push(id, &u.coords);
                counts.push(u.count);
            }
            None => {
                next.push(id, coords);
                counts.push(0);
            }
        }
    }
    (next, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = CenterSet::new(2);
        s.push(10, &[1.0, 2.0]);
        s.push(20, &[3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.id(1), 20);
        assert_eq!(s.coords(0), &[1.0, 2.0]);
        assert_eq!(s.index_of(20), Some(1));
        assert_eq!(s.index_of(99), None);
        let pairs: Vec<(i64, Vec<f64>)> = s.iter().map(|(i, c)| (i, c.to_vec())).collect();
        assert_eq!(pairs, vec![(10, vec![1.0, 2.0]), (20, vec![3.0, 4.0])]);
    }

    #[test]
    fn nearest_uses_all_centers() {
        let mut s = CenterSet::new(1);
        s.push(5, &[0.0]);
        s.push(6, &[10.0]);
        let (idx, id, d2) = s.nearest(&[9.0]).unwrap();
        assert_eq!((idx, id), (1, 6));
        assert!((d2 - 1.0).abs() < 1e-12);
        assert_eq!(CenterSet::new(3).nearest(&[1.0, 2.0, 3.0]), None);
    }

    #[test]
    #[should_panic(expected = "duplicate center id")]
    fn duplicate_id_panics() {
        let mut s = CenterSet::new(1);
        s.push(1, &[0.0]);
        s.push(1, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, OFFSET)")]
    fn reserved_id_panics() {
        let mut s = CenterSet::new(1);
        s.push(OFFSET, &[0.0]);
    }

    #[test]
    fn offset_matches_paper() {
        // 2⁶², "approximatively 4E18".
        assert_eq!(OFFSET, 4_611_686_018_427_387_904);
    }

    #[test]
    fn apply_updates_moves_and_preserves() {
        let mut s = CenterSet::new(1);
        s.push(0, &[0.0]);
        s.push(1, &[10.0]);
        let updates = vec![CenterUpdate {
            id: 1,
            coords: vec![11.0],
            count: 7,
        }];
        let (next, counts) = apply_updates(&s, &updates);
        assert_eq!(next.coords(0), &[0.0]); // kept, empty
        assert_eq!(next.coords(1), &[11.0]); // moved
        assert_eq!(counts, vec![0, 7]);
    }

    #[test]
    fn from_dataset_assigns_sequential_ids() {
        let ds = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = CenterSet::from_dataset(&ds);
        assert_eq!(s.id(0), 0);
        assert_eq!(s.id(1), 1);
        assert_eq!(s.to_dataset(), ds);
    }
}
