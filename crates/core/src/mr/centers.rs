//! Shared center-set state distributed to map tasks.
//!
//! Hadoop jobs ship the current centers to every mapper through the
//! distributed cache; here the job object holds an `Arc<CenterSet>` and
//! each mapper clones the handle in `create_mapper`. Center ids are
//! `i64` — the paper explicitly prefers integer keys over text ("sorting
//! text keys requires more processing than simple integer values",
//! §3.1) — and the candidate-center channel of `KMeansAndFindNewCenters`
//! is multiplexed by adding [`OFFSET`] to the id.

use gmr_linalg::{
    nearest_center_flat, nearest_centers_batch_tiled, Dataset, KdTree, TrianglePruner,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The id offset separating candidate-center keys from refine-center
/// keys: "as the type of center id is a Java Long, we use an offset
/// value equal to half the largest possible value of a Java Long. The
/// value of OFFSET is thus 2⁶²" (§3.1).
pub const OFFSET: i64 = 1 << 62;

/// The typed view of the dual-output key multiplexing in
/// `KMeansAndFindNewCenters` (§3.1): one shuffle carries both the
/// refine-center channel (plain center ids) and the candidate-center
/// channel (ids shifted by [`OFFSET`]). The wire format stays the
/// paper's raw `i64` arithmetic — [`ChannelKey::encode`] produces
/// exactly `id` or `id + OFFSET` — but mappers and reducers demux
/// through this enum instead of comparing against `OFFSET` by hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKey {
    /// A center-refinement record keyed by the center's own id.
    Refine(i64),
    /// A split-candidate record for the center with this id, keyed on
    /// the wire as `id + OFFSET`.
    Candidate(i64),
}

impl ChannelKey {
    /// The raw shuffle key: `id` for the refine channel, `id + OFFSET`
    /// for the candidate channel.
    pub fn encode(self) -> i64 {
        match self {
            ChannelKey::Refine(id) => id,
            ChannelKey::Candidate(id) => id + OFFSET,
        }
    }

    /// Classifies a raw shuffle key back into its channel. Center ids
    /// are always below [`OFFSET`] (enforced by [`CenterSet::push`]),
    /// so the comparison is exact.
    pub fn decode(key: i64) -> Self {
        if key >= OFFSET {
            ChannelKey::Candidate(key - OFFSET)
        } else {
            ChannelKey::Refine(key)
        }
    }
}

/// Which nearest-center kernel serves a job's cached-map fast path.
///
/// Every backend is **bit-identical** to the naive first-wins scan —
/// same argmin, same `f64` distance bits — and **cost-neutral**: it
/// charges exactly `k` distance evaluations per point, the paper's §4
/// accounting for a full scan. Backend choice therefore changes wall
/// time only; counters, simulated makespans, checkpoints and fault
/// replay are untouched, which is what lets the engine enable it on the
/// *default* path. (The opt-in [`CenterSet::with_kd_index`] /
/// [`CenterSet::with_triangle_prune`] accelerators are different: they
/// charge the *actual* evaluation count and so change the cost model.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelBackend {
    /// Pick per job from the center set's shape: the k-d tree at low
    /// dimensionality with enough centers (where spatial pruning is
    /// near-logarithmic), the SIMD blocked kernel everywhere else
    /// (where the curse of dimensionality makes trees scan anyway and
    /// wide FMA lanes win). See [`KernelBackend::resolve`].
    #[default]
    Auto,
    /// The SIMD blocked bounds-then-exact kernel
    /// ([`gmr_linalg::nearest_centers_batch_tiled`]).
    Blocked,
    /// The k-d tree ([`gmr_linalg::KdTree`]), first-wins contract
    /// included.
    Kd,
    /// Triangle-inequality pruning ([`gmr_linalg::TrianglePruner`]).
    Pruned,
}

impl KernelBackend {
    /// Resolves [`KernelBackend::Auto`] for a `dim`-dimensional set of
    /// `k` centers into a concrete backend. The thresholds come from
    /// the `repro kernels` d × k sweep (see `BENCH_kernels.json`): the
    /// k-d tree dominates at low dimension once there are enough
    /// centers for its pruning to amortize the descent (at d = 8 the
    /// crossover against the SIMD blocked kernel sits between k = 128
    /// and k = 512), and the blocked kernel wins everywhere else.
    pub fn resolve(self, dim: usize, k: usize) -> KernelBackend {
        match self {
            KernelBackend::Auto => {
                if k >= 32 && (dim <= 2 || (dim <= 8 && k >= 256)) {
                    KernelBackend::Kd
                } else {
                    KernelBackend::Blocked
                }
            }
            concrete => concrete,
        }
    }
}

/// The resolved, eagerly-built speed backend attached to a
/// [`CenterSet`] by [`CenterSet::with_backend`].
#[derive(Clone, Debug)]
enum SpeedBackend {
    Blocked,
    Kd(Arc<KdTree>),
    Pruned(Arc<TrianglePruner>),
}

impl SpeedBackend {
    fn name(&self) -> &'static str {
        match self {
            SpeedBackend::Blocked => "blocked",
            SpeedBackend::Kd(_) => "kd",
            SpeedBackend::Pruned(_) => "pruned",
        }
    }
}

/// An ordered set of centers with stable ids.
///
/// Nearest-center lookup defaults to the linear scan the paper's
/// implementation performs (`O(k)` distance computations per point —
/// the unit of its §4 cost model). Calling [`CenterSet::with_kd_index`]
/// attaches an exact k-d tree (the mrkd-tree acceleration §2 cites);
/// lookups then evaluate far fewer distances and the cost accounting
/// charges the *actual* evaluation count. Calling
/// [`CenterSet::with_backend`] instead attaches a cost-neutral *speed*
/// backend (see [`KernelBackend`]) that keeps the full-scan accounting.
#[derive(Clone, Debug, Default)]
pub struct CenterSet {
    dim: usize,
    ids: Vec<i64>,
    flat: Vec<f64>,
    /// Per-center squared norms, maintained incrementally by `push` so
    /// the blocked kernel never recomputes them per sweep (they are
    /// invariant within a job).
    norms: Vec<f64>,
    by_id: HashMap<i64, usize>,
    index: Option<Arc<KdTree>>,
    pruner: Option<Arc<TrianglePruner>>,
    /// Cost-neutral speed backend for the default cached-map path.
    speed: Option<SpeedBackend>,
    /// Worker threads for the blocked kernel's deterministic parallel
    /// tiles (1 = inline).
    tile_workers: usize,
}

impl PartialEq for CenterSet {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; equality is about the centers.
        self.dim == other.dim && self.ids == other.ids && self.flat == other.flat
    }
}

impl CenterSet {
    /// An empty set for centers in `R^dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            ids: Vec::new(),
            flat: Vec::new(),
            norms: Vec::new(),
            by_id: HashMap::new(),
            index: None,
            pruner: None,
            speed: None,
            tile_workers: 1,
        }
    }

    /// Builds a set from a dataset, assigning ids `0..len`.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let mut set = Self::new(ds.dim());
        for (i, row) in ds.rows().enumerate() {
            set.push(i as i64, row);
        }
        set
    }

    /// Appends a center.
    ///
    /// # Panics
    /// Panics on dimension mismatch, duplicate id, or id at/above
    /// [`OFFSET`] (those ids are reserved for the candidate channel).
    pub fn push(&mut self, id: i64, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "dimension mismatch");
        assert!(
            (0..OFFSET).contains(&id),
            "center id {id} outside [0, OFFSET)"
        );
        let idx = self.ids.len();
        let prev = self.by_id.insert(id, idx);
        assert!(prev.is_none(), "duplicate center id {id}");
        self.ids.push(id);
        self.norms.push(coords.iter().map(|x| x * x).sum());
        self.flat.extend_from_slice(coords);
        self.index = None; // centers changed; any derived structure is stale
        self.pruner = None;
        self.speed = None;
    }

    /// Builds (or rebuilds) the k-d index over the current centers.
    /// Subsequent [`CenterSet::nearest_with_cost`] calls use it.
    ///
    /// # Panics
    /// Panics when the set is empty.
    pub fn with_kd_index(mut self) -> Self {
        assert!(!self.is_empty(), "cannot index an empty center set");
        self.index = Some(Arc::new(KdTree::build(&self.flat, self.dim)));
        self
    }

    /// Builds (or rebuilds) the triangle-inequality pruner — the `k × k`
    /// half inter-center distance matrix — over the current centers.
    /// Subsequent [`CenterSet::nearest_with_cost`] calls skip centers the
    /// triangle inequality rules out, and the cost accounting charges the
    /// evaluations actually performed, exactly like the k-d path.
    ///
    /// # Panics
    /// Panics when the set is empty.
    pub fn with_triangle_prune(mut self) -> Self {
        assert!(!self.is_empty(), "cannot build a pruner for an empty set");
        self.pruner = Some(Arc::new(TrianglePruner::build(&self.flat, self.dim)));
        self
    }

    /// Attaches a cost-neutral speed backend for the default cached-map
    /// fast path, resolving [`KernelBackend::Auto`] against this set's
    /// shape and building the backing structure eagerly (once per job,
    /// like the opt-in accelerators). Results stay bit-identical to the
    /// naive scan and every point still charges `k` evaluations.
    ///
    /// Sets containing non-finite coordinates always get the blocked
    /// backend, whose internal scan fallback reproduces the naive
    /// scan's NaN comparison semantics exactly. Empty sets are a no-op.
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        if self.is_empty() {
            return self;
        }
        let finite = self.norms.iter().all(|n| n.is_finite());
        let resolved = if finite {
            backend.resolve(self.dim, self.len())
        } else {
            KernelBackend::Blocked
        };
        self.speed = Some(match resolved {
            KernelBackend::Kd => SpeedBackend::Kd(Arc::new(KdTree::build(&self.flat, self.dim))),
            KernelBackend::Pruned => {
                SpeedBackend::Pruned(Arc::new(TrianglePruner::build(&self.flat, self.dim)))
            }
            _ => SpeedBackend::Blocked,
        });
        self
    }

    /// Sets the worker-thread count for the blocked kernel's
    /// deterministic parallel tiles (clamped to at least 1). Results
    /// are byte-identical for every value; only wall time changes.
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }

    /// Name of the attached speed backend (`"blocked"`, `"kd"`,
    /// `"pruned"`), or `None` when lookups run the plain default path.
    pub fn speed_backend(&self) -> Option<&'static str> {
        self.speed.as_ref().map(|s| s.name())
    }

    /// True when a k-d index is attached.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// True when a triangle-inequality pruner is attached.
    pub fn has_pruner(&self) -> bool {
        self.pruner.is_some()
    }

    /// Per-center squared norms, aligned with center order.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set holds no centers.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Id of the center at `idx`.
    pub fn id(&self, idx: usize) -> i64 {
        self.ids[idx]
    }

    /// Coordinates of the center at `idx`.
    pub fn coords(&self, idx: usize) -> &[f64] {
        &self.flat[idx * self.dim..(idx + 1) * self.dim]
    }

    /// Index of the center with the given id.
    pub fn index_of(&self, id: i64) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Iterates `(id, coords)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[f64])> {
        self.ids
            .iter()
            .copied()
            .zip(self.flat.chunks_exact(self.dim))
    }

    /// Nearest center to `point`: `(index, id, squared_distance)`.
    pub fn nearest(&self, point: &[f64]) -> Option<(usize, i64, f64)> {
        self.nearest_with_cost(point)
            .map(|(idx, id, d2, _)| (idx, id, d2))
    }

    /// Nearest center plus the number of distance evaluations performed
    /// — `k` for the linear scan, usually far fewer with a k-d index or
    /// a triangle-inequality pruner.
    pub fn nearest_with_cost(&self, point: &[f64]) -> Option<(usize, i64, f64, u64)> {
        if self.is_empty() {
            return None;
        }
        if let Some(tree) = &self.index {
            let q = tree.nearest(point);
            return Some((q.index, self.ids[q.index], q.dist2, q.evaluations as u64));
        }
        if let Some(pruner) = &self.pruner {
            let (idx, d2, evals) = pruner.nearest(point, &self.flat, self.dim);
            return Some((idx, self.ids[idx], d2, evals));
        }
        let k = self.ids.len() as u64;
        match &self.speed {
            // Cost-neutral: the speed backends answer bit-identically to
            // the scan and charge the scan's full k evaluations.
            Some(SpeedBackend::Kd(tree)) => {
                let q = tree.nearest(point);
                Some((q.index, self.ids[q.index], q.dist2, k))
            }
            Some(SpeedBackend::Pruned(pruner)) => {
                let (idx, d2, _) = pruner.nearest(point, &self.flat, self.dim);
                Some((idx, self.ids[idx], d2, k))
            }
            _ => nearest_center_flat(point, &self.flat, self.dim)
                .map(|(idx, d2)| (idx, self.ids[idx], d2, k)),
        }
    }

    /// Nearest center for every row of a flat point block, returning one
    /// `(index, id, squared_distance, evaluations)` per point.
    ///
    /// `point_norms` are the per-row squared norms of `points` (cached
    /// once per split by the point cache). Without an accelerator the
    /// attached speed backend (or the SIMD blocked batch kernel, with
    /// parallel tiles when [`CenterSet::with_tile_workers`] allows)
    /// runs — bit-identical to the scalar scan, charging `k`
    /// evaluations per point like the scan does — so simulated cost and
    /// counters are unchanged while wall time drops. With an opt-in k-d
    /// index or pruner attached, those paths run per row and report
    /// their actual evaluation counts.
    ///
    /// Returns an empty vector when the set is empty.
    pub fn nearest_block(
        &self,
        points: &[f64],
        point_norms: &[f64],
    ) -> Vec<(usize, i64, f64, u64)> {
        if self.is_empty() || points.is_empty() {
            return Vec::new();
        }
        if let Some(tree) = &self.index {
            return points
                .chunks_exact(self.dim)
                .map(|p| {
                    let q = tree.nearest(p);
                    (q.index, self.ids[q.index], q.dist2, q.evaluations as u64)
                })
                .collect();
        }
        if let Some(pruner) = &self.pruner {
            return points
                .chunks_exact(self.dim)
                .map(|p| {
                    let (idx, d2, evals) = pruner.nearest(p, &self.flat, self.dim);
                    (idx, self.ids[idx], d2, evals)
                })
                .collect();
        }
        let k = self.ids.len() as u64;
        match &self.speed {
            // Cost-neutral speed backends: bit-identical to the scan,
            // charging the scan's k evaluations per point.
            //
            // (Deliberately *not* `KdTree::nearest_from`: generated
            // datasets interleave clusters round-robin, so consecutive
            // points rarely share one and the warm-start bound costs
            // more than it prunes here.)
            Some(SpeedBackend::Kd(tree)) => points
                .chunks_exact(self.dim)
                .map(|p| {
                    let q = tree.nearest(p);
                    (q.index, self.ids[q.index], q.dist2, k)
                })
                .collect(),
            Some(SpeedBackend::Pruned(pruner)) => points
                .chunks_exact(self.dim)
                .map(|p| {
                    let (idx, d2, _) = pruner.nearest(p, &self.flat, self.dim);
                    (idx, self.ids[idx], d2, k)
                })
                .collect(),
            _ => nearest_centers_batch_tiled(
                points,
                point_norms,
                &self.flat,
                &self.norms,
                self.dim,
                self.tile_workers,
            )
            .into_iter()
            .map(|(idx, d2)| (idx, self.ids[idx], d2, k))
            .collect(),
        }
    }

    /// The centers as a [`Dataset`] (ids dropped, order preserved).
    pub fn to_dataset(&self) -> Dataset {
        Dataset::from_flat(self.dim, self.flat.clone())
    }
}

/// One refined center coming out of a k-means reducer.
#[derive(Clone, Debug, PartialEq)]
pub struct CenterUpdate {
    /// Center id.
    pub id: i64,
    /// New position (the mean of assigned points).
    pub coords: Vec<f64>,
    /// Number of points that contributed.
    pub count: u64,
}

/// Applies reducer updates to a center set: updated ids move to their
/// new position; ids without an update keep their old position with a
/// count of zero (the empty-cluster convention). Returns the new set and
/// the per-center counts, aligned with the set's order.
pub fn apply_updates(current: &CenterSet, updates: &[CenterUpdate]) -> (CenterSet, Vec<u64>) {
    // Slot each update through the set's existing id→index map instead of
    // rebuilding a HashMap over the update list on every iteration.
    let mut slots: Vec<Option<&CenterUpdate>> = vec![None; current.len()];
    for u in updates {
        if let Some(idx) = current.index_of(u.id) {
            slots[idx] = Some(u);
        }
    }
    let mut next = CenterSet::new(current.dim());
    let mut counts = Vec::with_capacity(current.len());
    for (slot, (id, coords)) in slots.iter().zip(current.iter()) {
        match slot {
            Some(u) => {
                next.push(id, &u.coords);
                counts.push(u.count);
            }
            None => {
                next.push(id, coords);
                counts.push(0);
            }
        }
    }
    (next, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = CenterSet::new(2);
        s.push(10, &[1.0, 2.0]);
        s.push(20, &[3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.id(1), 20);
        assert_eq!(s.coords(0), &[1.0, 2.0]);
        assert_eq!(s.index_of(20), Some(1));
        assert_eq!(s.index_of(99), None);
        let pairs: Vec<(i64, Vec<f64>)> = s.iter().map(|(i, c)| (i, c.to_vec())).collect();
        assert_eq!(pairs, vec![(10, vec![1.0, 2.0]), (20, vec![3.0, 4.0])]);
    }

    #[test]
    fn nearest_uses_all_centers() {
        let mut s = CenterSet::new(1);
        s.push(5, &[0.0]);
        s.push(6, &[10.0]);
        let (idx, id, d2) = s.nearest(&[9.0]).unwrap();
        assert_eq!((idx, id), (1, 6));
        assert!((d2 - 1.0).abs() < 1e-12);
        assert_eq!(CenterSet::new(3).nearest(&[1.0, 2.0, 3.0]), None);
    }

    #[test]
    #[should_panic(expected = "duplicate center id")]
    fn duplicate_id_panics() {
        let mut s = CenterSet::new(1);
        s.push(1, &[0.0]);
        s.push(1, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, OFFSET)")]
    fn reserved_id_panics() {
        let mut s = CenterSet::new(1);
        s.push(OFFSET, &[0.0]);
    }

    #[test]
    fn offset_matches_paper() {
        // 2⁶², "approximatively 4E18".
        assert_eq!(OFFSET, 4_611_686_018_427_387_904);
    }

    #[test]
    fn apply_updates_moves_and_preserves() {
        let mut s = CenterSet::new(1);
        s.push(0, &[0.0]);
        s.push(1, &[10.0]);
        let updates = vec![CenterUpdate {
            id: 1,
            coords: vec![11.0],
            count: 7,
        }];
        let (next, counts) = apply_updates(&s, &updates);
        assert_eq!(next.coords(0), &[0.0]); // kept, empty
        assert_eq!(next.coords(1), &[11.0]); // moved
        assert_eq!(counts, vec![0, 7]);
    }

    #[test]
    fn apply_updates_ignores_unknown_ids() {
        let mut s = CenterSet::new(1);
        s.push(0, &[0.0]);
        let updates = vec![CenterUpdate {
            id: 99,
            coords: vec![5.0],
            count: 3,
        }];
        let (next, counts) = apply_updates(&s, &updates);
        assert_eq!(next.len(), 1);
        assert_eq!(next.coords(0), &[0.0]);
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn nearest_block_matches_per_point_lookup() {
        let mut s = CenterSet::new(2);
        s.push(0, &[0.0, 0.0]);
        s.push(1, &[10.0, 0.0]);
        s.push(2, &[5.0, 5.0]);
        let points = [1.0, 0.5, 9.0, -0.5, 5.0, 4.0, 5.0, 2.5];
        let norms = gmr_linalg::squared_norms(&points, 2);
        for set in [
            s.clone(),
            s.clone().with_kd_index(),
            s.clone().with_triangle_prune(),
        ] {
            let block = set.nearest_block(&points, &norms);
            assert_eq!(block.len(), 4);
            for (p, got) in points.chunks_exact(2).zip(&block) {
                let (idx, id, d2, _) = set.nearest_with_cost(p).unwrap();
                assert_eq!((got.0, got.1), (idx, id));
                assert_eq!(got.2.to_bits(), d2.to_bits());
            }
        }
    }

    #[test]
    fn pruner_matches_linear_scan_and_costs_less() {
        let mut s = CenterSet::new(2);
        for i in 0..8 {
            s.push(i, &[i as f64 * 0.1, 0.0]);
        }
        for i in 8..16 {
            s.push(i, &[500.0 + i as f64 * 0.1, 0.0]);
        }
        let pruned = s.clone().with_triangle_prune();
        assert!(pruned.has_pruner() && !s.has_pruner());
        let p = [0.21, 0.02];
        let (idx, id, d2, evals) = pruned.nearest_with_cost(&p).unwrap();
        let (want_idx, want_id, want_d2, full) = s.nearest_with_cost(&p).unwrap();
        assert_eq!((idx, id), (want_idx, want_id));
        assert_eq!(d2.to_bits(), want_d2.to_bits());
        assert_eq!(full, 16);
        assert!(evals < full, "pruner evaluated all {evals} centers");
    }

    #[test]
    fn push_invalidates_pruner_and_maintains_norms() {
        let mut s = CenterSet::new(2);
        s.push(0, &[3.0, 4.0]);
        let mut pruned = s.with_triangle_prune();
        assert!(pruned.has_pruner());
        pruned.push(1, &[1.0, 2.0]);
        assert!(!pruned.has_pruner(), "push must invalidate the pruner");
        assert_eq!(pruned.norms(), &[25.0, 5.0]);
    }

    #[test]
    fn speed_backends_are_bit_identical_and_charge_full_scans() {
        let mut s = CenterSet::new(2);
        for i in 0..40 {
            s.push(i, &[(i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0]);
        }
        let points: Vec<f64> = (0..64).map(|i| ((i * 7) % 23) as f64).collect();
        let norms = gmr_linalg::squared_norms(&points, 2);
        let want = s.nearest_block(&points, &norms);
        for backend in [
            KernelBackend::Auto,
            KernelBackend::Blocked,
            KernelBackend::Kd,
            KernelBackend::Pruned,
        ] {
            let fast = s.clone().with_backend(backend).with_tile_workers(3);
            assert!(fast.speed_backend().is_some());
            let got = fast.nearest_block(&points, &norms);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.0, g.1), (w.0, w.1), "{backend:?}");
                assert_eq!(g.2.to_bits(), w.2.to_bits(), "{backend:?}");
                assert_eq!(g.3, 40, "{backend:?} must charge k evals");
            }
            // Single-point dispatch agrees too.
            for p in points.chunks_exact(2) {
                let a = fast.nearest_with_cost(p).unwrap();
                let b = s.nearest_with_cost(p).unwrap();
                assert_eq!(
                    (a.0, a.1, a.2.to_bits(), a.3),
                    (b.0, b.1, b.2.to_bits(), b.3)
                );
            }
        }
    }

    #[test]
    fn auto_backend_resolution_follows_shape() {
        assert_eq!(
            KernelBackend::Auto.resolve(2, 128),
            KernelBackend::Kd,
            "low d, many centers: kd"
        );
        assert_eq!(
            KernelBackend::Auto.resolve(32, 4096),
            KernelBackend::Blocked,
            "high d: blocked"
        );
        assert_eq!(
            KernelBackend::Auto.resolve(2, 4),
            KernelBackend::Blocked,
            "too few centers to amortize a tree"
        );
        assert_eq!(
            KernelBackend::Auto.resolve(8, 128),
            KernelBackend::Blocked,
            "d=8 below the measured k crossover: blocked"
        );
        assert_eq!(
            KernelBackend::Auto.resolve(8, 512),
            KernelBackend::Kd,
            "d=8 above the measured k crossover: kd"
        );
        assert_eq!(KernelBackend::Kd.resolve(128, 2), KernelBackend::Kd);
    }

    #[test]
    fn non_finite_centers_force_the_blocked_speed_backend() {
        let mut s = CenterSet::new(2);
        for i in 0..40 {
            s.push(i, &[i as f64, 1.0]);
        }
        s.push(40, &[f64::NAN, f64::INFINITY]);
        let fast = s.clone().with_backend(KernelBackend::Auto);
        assert_eq!(fast.speed_backend(), Some("blocked"));
        // The blocked path's scan fallback keeps bit-identity even here.
        let points = [3.5, 0.5, 100.0, -2.0];
        let norms = gmr_linalg::squared_norms(&points, 2);
        let got = fast.nearest_block(&points, &norms);
        for (p, g) in points.chunks_exact(2).zip(&got) {
            let (idx, d2) = gmr_linalg::nearest_center_flat(p, &s.flat, 2).unwrap();
            assert_eq!(g.0, idx);
            assert_eq!(g.2.to_bits(), d2.to_bits());
        }
    }

    #[test]
    fn push_invalidates_the_speed_backend() {
        let mut s = CenterSet::new(1);
        for i in 0..40 {
            s.push(i, &[i as f64]);
        }
        let mut fast = s.with_backend(KernelBackend::Auto);
        assert!(fast.speed_backend().is_some());
        fast.push(99, &[0.5]);
        assert_eq!(fast.speed_backend(), None, "push must drop the backend");
    }

    #[test]
    fn from_dataset_assigns_sequential_ids() {
        let ds = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = CenterSet::from_dataset(&ds);
        assert_eq!(s.id(0), 0);
        assert_eq!(s.id(1), 1);
        assert_eq!(s.to_dataset(), ds);
    }
}
