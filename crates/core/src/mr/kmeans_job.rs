//! The classical MapReduce k-means job with combiners (§3, first loop
//! operation of Algorithm 1).
//!
//! * **Mapper** — parse the point, find its nearest center, emit
//!   `(center_id, (coordinates, 1))`.
//! * **Combiner** — pre-aggregate partial `(sum, count)` pairs per
//!   center, collapsing a split's emissions to at most one record per
//!   center ("a combiner is a well-known pre-aggregation optimization").
//! * **Reducer** — fold the partials and emit the new center position
//!   `sum / count`.

use std::sync::Arc;

use gmr_datagen::parse_point_dim;
use gmr_mapreduce::prelude::*;

use crate::mr::centers::{CenterSet, CenterUpdate};

/// Intermediate value: partial coordinate sums plus a point count.
pub type PointSum = (Vec<f64>, u64);

/// Hadoop-style bad-record skipping, shared by every point-scanning
/// mapper: a line that does not parse as a finite point of the expected
/// dimensionality is quarantined under the `BAD_RECORDS_SKIPPED`
/// counters instead of failing the task.
pub(crate) fn parse_point_or_skip(
    line: &str,
    dim: usize,
    ctx: &mut TaskContext,
) -> Option<Vec<f64>> {
    match parse_point_dim(line, dim) {
        Ok(point) => Some(point),
        Err(_) => {
            ctx.skip_bad_record(line);
            None
        }
    }
}

/// The typed failure for a job launched over an empty center set — a
/// degenerate iteration the drivers degrade into a reported error
/// instead of a panic.
pub(crate) fn empty_centers_error(job: &str) -> Error {
    Error::Degenerate(format!("{job} launched with an empty center set"))
}

/// Element-wise fold of partial sums (shared by this job's combiner and
/// reducer and by `KMeansAndFindNewCenters`).
pub fn fold_point_sums(values: impl IntoIterator<Item = PointSum>) -> Option<PointSum> {
    let mut acc: Option<PointSum> = None;
    for (coords, count) in values {
        match acc.as_mut() {
            None => acc = Some((coords, count)),
            Some((sum, total)) => {
                debug_assert_eq!(sum.len(), coords.len(), "mixed dimensions in shuffle");
                for (s, c) in sum.iter_mut().zip(&coords) {
                    *s += c;
                }
                *total += count;
            }
        }
    }
    acc
}

/// The k-means MapReduce job.
pub struct KMeansJob {
    centers: Arc<CenterSet>,
    combiner: bool,
}

impl KMeansJob {
    /// Creates the job for the given current centers. An empty center
    /// set is accepted here — the job then fails at runtime with the
    /// typed [`Error::Degenerate`], which the drivers degrade into a
    /// reported iteration error instead of a panic.
    pub fn new(centers: Arc<CenterSet>) -> Self {
        Self {
            centers,
            combiner: true,
        }
    }

    /// Disables or re-enables the map-side combiner. The paper treats
    /// the combiner as essential (§3.1); the toggle exists for the
    /// ablation benchmark that quantifies what it buys.
    pub fn with_combiner(mut self, combiner: bool) -> Self {
        self.combiner = combiner;
        self
    }
}

/// Mapper of [`KMeansJob`].
pub struct KMeansMapper {
    centers: Arc<CenterSet>,
    /// Assignments precomputed by the blocked kernel, drained one per
    /// `map_point` call; empty in text mode (scalar fallback).
    pending: std::collections::VecDeque<(i64, u64)>,
}

impl KMeansMapper {
    fn process(
        &self,
        point: Vec<f64>,
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        let (_, id, _, evals) = self
            .centers
            .nearest_with_cost(&point)
            .ok_or_else(|| empty_centers_error("KMeans"))?;
        ctx.charge_distances(evals, self.centers.dim());
        out.emit(id, (point, 1));
        Ok(())
    }
}

impl Mapper for KMeansMapper {
    type Key = i64;
    type Value = PointSum;

    fn map(
        &mut self,
        _offset: u64,
        line: &str,
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        match parse_point_or_skip(line, self.centers.dim(), ctx) {
            Some(point) => self.process(point, out, ctx),
            None => Ok(()),
        }
    }
}

impl PointMapper for KMeansMapper {
    fn map_point(
        &mut self,
        point: &[f64],
        out: &mut MapOutput<'_, i64, PointSum>,
        ctx: &mut TaskContext,
    ) -> Result<()> {
        if let Some((id, evals)) = self.pending.pop_front() {
            ctx.charge_distances(evals, self.centers.dim());
            out.emit(id, (point.to_vec(), 1));
            return Ok(());
        }
        self.process(point.to_vec(), out, ctx)
    }

    fn prepare_block(
        &mut self,
        points: &[f64],
        norms: &[f64],
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        debug_assert!(self.pending.is_empty(), "undrained block");
        self.pending.clear();
        self.pending.extend(
            self.centers
                .nearest_block(points, norms)
                .into_iter()
                .map(|(_, id, _, evals)| (id, evals)),
        );
        Ok(())
    }
}

/// Reducer of [`KMeansJob`].
pub struct KMeansReducer;

impl Reducer for KMeansReducer {
    type Key = i64;
    type Value = PointSum;
    type Output = CenterUpdate;

    fn reduce(
        &mut self,
        key: i64,
        values: Values<'_, PointSum>,
        out: &mut Vec<CenterUpdate>,
        _ctx: &mut TaskContext,
    ) -> Result<()> {
        if let Some((sum, count)) = fold_point_sums(values) {
            let inv = 1.0 / count as f64;
            out.push(CenterUpdate {
                id: key,
                coords: sum.iter().map(|s| s * inv).collect(),
                count,
            });
        }
        Ok(())
    }
}

impl Job for KMeansJob {
    type Key = i64;
    type Value = PointSum;
    type Output = CenterUpdate;
    type Mapper = KMeansMapper;
    type Reducer = KMeansReducer;

    fn name(&self) -> &str {
        "KMeans"
    }

    fn create_mapper(&self) -> KMeansMapper {
        KMeansMapper {
            centers: Arc::clone(&self.centers),
            pending: std::collections::VecDeque::new(),
        }
    }

    fn create_reducer(&self) -> KMeansReducer {
        KMeansReducer
    }

    fn has_combiner(&self) -> bool {
        self.combiner
    }

    fn combine(&self, _key: &i64, values: Vec<PointSum>) -> Vec<PointSum> {
        fold_point_sums(values).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::centers::apply_updates;
    use gmr_datagen::format_point;
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;
    use gmr_mapreduce::runtime::JobRunner;

    fn write_points(dfs: &Arc<Dfs>, path: &str, pts: &[Vec<f64>]) {
        dfs.put_lines(path, pts.iter().map(|p| format_point(p)))
            .unwrap();
    }

    #[test]
    fn fold_sums_basic() {
        let folded = fold_point_sums(vec![(vec![1.0, 2.0], 1), (vec![3.0, 4.0], 2)]).unwrap();
        assert_eq!(folded, (vec![4.0, 6.0], 3));
        assert_eq!(fold_point_sums(Vec::new()), None);
    }

    #[test]
    fn one_job_equals_one_lloyd_iteration() {
        // Two 1-D blobs; centers slightly off. After one job the centers
        // must be the blob means, exactly like serial Lloyd.
        let dfs = Arc::new(Dfs::new(64));
        write_points(
            &dfs,
            "pts",
            &[
                vec![0.0],
                vec![1.0],
                vec![2.0],
                vec![10.0],
                vec![11.0],
                vec![12.0],
            ],
        );
        let mut centers = CenterSet::new(1);
        centers.push(0, &[0.5]);
        centers.push(1, &[11.5]);
        let job = KMeansJob::new(Arc::new(centers.clone()));
        let runner = JobRunner::new(Arc::clone(&dfs), ClusterConfig::default()).unwrap();
        let result = runner
            .run(&job, "pts", &JobConfig::with_reducers(2))
            .unwrap();

        let (next, counts) = apply_updates(&centers, &result.output);
        assert_eq!(counts, vec![3, 3]);
        assert!((next.coords(0)[0] - 1.0).abs() < 1e-12);
        assert!((next.coords(1)[0] - 11.0).abs() < 1e-12);

        // Distance accounting: 6 points × 2 centers.
        assert_eq!(result.counters.get(Counter::DistanceComputations), 12);
    }

    #[test]
    fn empty_cluster_is_absent_from_output() {
        let dfs = Arc::new(Dfs::new(64));
        write_points(&dfs, "pts", &[vec![0.0], vec![1.0]]);
        let mut centers = CenterSet::new(1);
        centers.push(0, &[0.5]);
        centers.push(1, &[100.0]);
        let job = KMeansJob::new(Arc::new(centers.clone()));
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let result = runner
            .run(&job, "pts", &JobConfig::with_reducers(2))
            .unwrap();
        assert_eq!(result.output.len(), 1);
        assert_eq!(result.output[0].id, 0);
        let (next, counts) = apply_updates(&centers, &result.output);
        assert_eq!(next.coords(1), &[100.0]);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn combiner_collapses_to_one_record_per_center_per_split() {
        let dfs = Arc::new(Dfs::new(1 << 20)); // single split
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 2) as f64 * 10.0]).collect();
        write_points(&dfs, "pts", &pts);
        let mut centers = CenterSet::new(1);
        centers.push(0, &[0.0]);
        centers.push(1, &[10.0]);
        let job = KMeansJob::new(Arc::new(centers));
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let result = runner
            .run(&job, "pts", &JobConfig::with_reducers(2))
            .unwrap();
        assert_eq!(result.counters.get(Counter::MapOutputRecords), 100);
        // One split, two centers → exactly 2 combined records shuffled.
        assert_eq!(result.counters.get(Counter::ReduceInputRecords), 2);
    }

    #[test]
    fn malformed_points_are_skipped_not_fatal() {
        // Unparsable text, a NaN coordinate, and a dimension mismatch
        // are all quarantined; the clean points still cluster.
        let dfs = Arc::new(Dfs::new(64));
        dfs.put_lines("pts", ["1.0", "oops", "nan", "2.0 3.0", "3.0"])
            .unwrap();
        let mut centers = CenterSet::new(1);
        centers.push(0, &[0.0]);
        let job = KMeansJob::new(Arc::new(centers));
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let result = runner
            .run(&job, "pts", &JobConfig::with_reducers(1))
            .unwrap();
        assert_eq!(result.counters.get(Counter::BadRecordsSkipped), 3);
        assert!(result.counters.get(Counter::BadRecordBytes) > 0);
        assert_eq!(result.output.len(), 1);
        assert_eq!(result.output[0].count, 2);
        assert!((result.output[0].coords[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_center_set_is_a_typed_degenerate_error() {
        let dfs = Arc::new(Dfs::new(64));
        dfs.put_lines("pts", ["1.0 2.0"]).unwrap();
        let job = KMeansJob::new(Arc::new(CenterSet::new(2)));
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let err = runner
            .run(&job, "pts", &JobConfig::with_reducers(1))
            .unwrap_err();
        assert!(
            matches!(err, gmr_mapreduce::Error::Degenerate(_)),
            "expected Degenerate, got {err:?}"
        );
    }
}
