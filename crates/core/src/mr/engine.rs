//! The generic iterative-driver engine.
//!
//! Every MapReduce driver in this crate — G-means (Algorithm 1), plain
//! k-means, multi-k-means (Algorithm 6) and k-means‖ initialization —
//! is the same loop wearing a different algorithm: plan a wave of jobs,
//! run them, fold the outputs into driver state, checkpoint at the
//! iteration boundary, repeat until converged. This module owns that
//! loop once, so every cross-cutting guarantee is single-sourced:
//!
//! * **journal reset / commit** with the serialize-before-charge
//!   ordering (a snapshot cannot contain the cost of its own commit, so
//!   the charge is applied *after* [`RunJournal::commit`] returns the
//!   stored byte count — and re-applied in the same position on
//!   resume);
//! * **resume recovery**: newest intact snapshot → restore → re-apply
//!   the loaded checkpoint's commit charge → rebuild the point cache
//!   (physical re-read only) → continue bit-identically;
//! * **fault degradation**: task failures ([`Error::HeapSpace`],
//!   [`Error::AttemptsExhausted`], [`Error::Degenerate`],
//!   [`Error::ReplicasLost`]) are offered
//!   to the algorithm to absorb; everything else — including the
//!   injected [`Error::DriverCrash`], which a dying process cannot
//!   catch — propagates;
//! * **counters, dataset reads, and the wall/simulated clocks**,
//!   accumulated per job in a fixed order so resumed totals match
//!   uninterrupted ones bit for bit;
//! * **cached-vs-streaming dispatch** ([`ExecutionMode`]) through one
//!   [`Submission`] handle per job;
//! * **accelerator wiring**: the k-d index / triangle-pruning flags are
//!   applied by [`EngineCtx::prepare`], never by algorithms directly.
//!
//! An algorithm is a pure state machine implementing
//! [`IterativeAlgorithm`]: `fresh` builds the initial state, `plan`
//! emits the next wave of jobs, `apply` folds their outputs and decides
//! [`Step::Continue`] (more waves this iteration) or [`Step::Boundary`]
//! (iteration done — checkpointable), and `finish` converts the final
//! state into the driver's result. Adding a fifth driver means writing
//! those methods; the engine needs no changes.

use std::sync::Arc;
use std::time::Instant;

use gmr_linalg::Dataset;
use gmr_mapreduce::cache::PointCache;
use gmr_mapreduce::checkpoint::{no_journal_error, RunJournal};
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::counters::{Counter, Counters};
use gmr_mapreduce::job::{Job, JobConfig, PointMapper};
use gmr_mapreduce::submit::Submission;
use gmr_mapreduce::writable::{to_bytes, Writable};
use gmr_mapreduce::{Error, Result};

use crate::mr::centers::{CenterSet, KernelBackend};
use crate::mr::sample::sample_points;

/// How a driver feeds the dataset to its jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Hadoop-style: every job re-reads and re-parses the text dataset
    /// from the DFS (the paper's implementation).
    #[default]
    OnDisk,
    /// Spark-style (the paper's §6 future work): the dataset is parsed
    /// once into an in-memory, partition-preserving [`PointCache`];
    /// every job scans the decoded points. One dataset read total
    /// instead of one per job.
    Cached,
}

/// What an [`IterativeAlgorithm::apply`] decides after a job wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The iteration needs more job waves: the engine calls
    /// [`IterativeAlgorithm::plan`] again.
    Continue,
    /// The iteration is complete: the engine folds its stats into the
    /// run totals and commits a checkpoint (when journaling).
    Boundary,
}

/// Job and clock totals of the current iteration segment (the job waves
/// since the last checkpointed boundary).
#[derive(Clone, Copy, Debug, Default)]
pub struct SegmentStats {
    /// Simulated seconds of this segment's successful jobs.
    pub simulated_secs: f64,
    /// Successful jobs launched this segment.
    pub jobs: usize,
}

/// Whole-run totals handed to [`IterativeAlgorithm::finish`].
#[derive(Debug)]
pub struct RunStats {
    /// Total simulated seconds (job makespans + checkpoint commits).
    pub simulated_secs: f64,
    /// Real wall-clock of the run so far.
    pub wall_secs: f64,
    /// Total MapReduce jobs launched.
    pub jobs: usize,
    /// Logical dataset reads (serial samples + cache build + per-job
    /// scans of disk-based jobs).
    pub dataset_reads: u64,
    /// Counters accumulated over every successful job.
    pub counters: Counters,
    /// The task failure that ended the run early, if any.
    pub failure: Option<Error>,
}

/// A type-erased result of one executed job.
struct ErasedOutput {
    output: Box<dyn std::any::Any>,
    counters: Counters,
    timing: JobTiming,
}

type PlannedRun = Box<dyn FnOnce(&Submission<'_>, &JobConfig) -> Result<ErasedOutput>>;

/// One job of a planned wave: the concrete [`Job`] is captured in a
/// closure so the engine can run heterogeneous jobs through one loop.
pub struct PlannedJob {
    reducers: usize,
    run: PlannedRun,
}

impl PlannedJob {
    /// Wraps a concrete job with its reduce-task count.
    pub fn new<J>(job: J, reducers: usize) -> Self
    where
        J: Job + 'static,
        J::Mapper: PointMapper,
    {
        Self {
            reducers,
            run: Box::new(move |submission, config| {
                let result = submission.submit(&job, config)?;
                Ok(ErasedOutput {
                    output: Box::new(result.output),
                    counters: result.counters,
                    timing: result.timing,
                })
            }),
        }
    }
}

/// The outputs of one executed job, handed to
/// [`IterativeAlgorithm::apply`].
pub struct JobOutputs {
    output: Box<dyn std::any::Any>,
    timing: JobTiming,
}

impl JobOutputs {
    /// Downcasts to the concrete output records of the planned job.
    ///
    /// # Panics
    /// Panics when `O` is not the output type of the job this wave
    /// planned — a driver programming error, not a runtime condition.
    pub fn take<O: 'static>(self) -> Vec<O> {
        self.into_parts().0
    }

    /// Like [`JobOutputs::take`], also returning the job's timing.
    ///
    /// # Panics
    /// Panics when `O` is not the planned job's output type.
    pub fn into_parts<O: 'static>(self) -> (Vec<O>, JobTiming) {
        let output = *self
            .output
            .downcast::<Vec<O>>()
            .expect("job output type mismatch between plan and apply");
        (output, self.timing)
    }
}

/// An iterative MapReduce algorithm: the pure state machine the
/// [`Engine`] drives. See the module docs for the contract; the
/// existing drivers ([`crate::mr::MRGMeans`], [`crate::mr::MRKMeans`],
/// [`crate::mr::MultiKMeans`], [`crate::mr::KMeansParallelInit`]) are
/// the reference implementations.
pub trait IterativeAlgorithm {
    /// Complete in-memory loop state between job waves.
    type State;
    /// The journaled wire form of [`IterativeAlgorithm::State`] at an
    /// iteration boundary. Transient intra-iteration scratch need not
    /// be captured: a resume replays the interrupted iteration from its
    /// boundary snapshot.
    type Snapshot: Writable;
    /// What the driver ultimately returns.
    type Output;

    /// Driver name, used in journal-configuration errors.
    const NAME: &'static str;
    /// Snapshot framing magic (also versions the layout; bump on
    /// change). A journal written by one driver cannot resume another.
    const MAGIC: u32;
    /// Whether checkpoint commits are charged to the counters and the
    /// simulated clock. `false` only for drivers that surface neither
    /// (k-means‖ returns a bare center set).
    const CHARGE_COMMITS: bool = true;

    /// Builds the initial state (serial samples via
    /// [`EngineCtx::sample`]).
    fn fresh(&self, ctx: &mut EngineCtx<'_>) -> Result<Self::State>;
    /// Dataset dimensionality, for the cached-mode point cache.
    fn dim(&self, state: &Self::State) -> Result<usize>;
    /// True when no further iterations should run.
    fn done(&self, state: &Self::State) -> bool;
    /// Checkpoint sequence number of the current boundary.
    fn seq(&self, state: &Self::State) -> u64;
    /// Plans the next wave of jobs. Called again after every
    /// [`Step::Continue`]; may mutate intra-iteration scratch state.
    fn plan(&self, state: &mut Self::State, ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>>;
    /// Folds a wave's outputs into the state. `seg` carries the
    /// iteration segment's stats so far (for per-iteration reports).
    fn apply(
        &self,
        state: &mut Self::State,
        outputs: Vec<JobOutputs>,
        seg: &SegmentStats,
    ) -> Result<Step>;
    /// Serializes the boundary state for the journal.
    fn snapshot(&self, state: &Self::State) -> Self::Snapshot;
    /// Rebuilds state from a decoded snapshot.
    fn restore(&self, snap: Self::Snapshot) -> Result<Self::State>;
    /// Offered an absorbable task failure (heap, attempts exhausted,
    /// degenerate input). Return `Ok(err)` to degrade gracefully — the
    /// run stops and `err` lands in [`RunStats::failure`] — or `Err` to
    /// propagate. The default propagates.
    fn on_task_failure(
        &self,
        _state: &mut Self::State,
        failure: Error,
        _seg: &SegmentStats,
    ) -> Result<Error> {
        Err(failure)
    }
    /// Converts the final state into the driver result. `ctx` still
    /// accepts [`EngineCtx::execute`] for deterministic post-loop jobs
    /// (k-means‖ runs its candidate-weighting job here).
    fn finish(
        &self,
        state: Self::State,
        ctx: &mut EngineCtx<'_>,
        stats: RunStats,
    ) -> Result<Self::Output>;
}

/// Run totals the engine owns on behalf of every algorithm; serialized
/// into the checkpoint frame ahead of the algorithm snapshot.
#[derive(Debug, Default)]
struct Totals {
    jobs: u64,
    reads: u64,
    simulated: f64,
    counters: Counters,
}

/// Wire form of [`Totals`].
struct TotalsSnap {
    jobs: u64,
    reads: u64,
    simulated: f64,
    counters: Vec<u64>,
}

impl Writable for TotalsSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.jobs.write(buf);
        self.reads.write(buf);
        self.simulated.write(buf);
        self.counters.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            jobs: u64::read(buf)?,
            reads: u64::read(buf)?,
            simulated: f64::read(buf)?,
            counters: Vec::read(buf)?,
        })
    }
}

/// Borrowing write-only wrapper so a frame can be encoded without
/// cloning the algorithm snapshot.
struct WriteOnly<'a, T>(&'a T);

impl<T: Writable> Writable for WriteOnly<'_, T> {
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
    }
    fn read(_buf: &mut &[u8]) -> Result<Self> {
        Err(Error::Corrupt("write-only wrapper".into()))
    }
}

/// Frames engine totals + algorithm snapshot under the driver magic.
fn encode_frame<A: IterativeAlgorithm>(totals: &Totals, snap: &A::Snapshot) -> Vec<u8> {
    let totals_snap = TotalsSnap {
        jobs: totals.jobs,
        reads: totals.reads,
        simulated: totals.simulated,
        counters: counters_to_vec(&totals.counters),
    };
    to_bytes(&(A::MAGIC, (totals_snap, WriteOnly(snap))))
}

/// Unframes a checkpoint payload, rejecting other drivers' journals.
fn decode_frame<A: IterativeAlgorithm>(payload: &[u8]) -> Result<(Totals, A::Snapshot)> {
    let mut buf = payload;
    let found = u32::read(&mut buf)?;
    if found != A::MAGIC {
        return Err(Error::Corrupt(format!(
            "checkpoint magic {found:#010x} does not match expected {magic:#010x}",
            magic = A::MAGIC
        )));
    }
    let totals_snap = TotalsSnap::read(&mut buf)?;
    let snap = A::Snapshot::read(&mut buf)?;
    Ok((
        Totals {
            jobs: totals_snap.jobs,
            reads: totals_snap.reads,
            simulated: totals_snap.simulated,
            counters: counters_from_vec(&totals_snap.counters)?,
        },
        snap,
    ))
}

/// Counter bank → values in [`Counter::all`] order.
pub(crate) fn counters_to_vec(counters: &Counters) -> Vec<u64> {
    Counter::all().iter().map(|&c| counters.get(c)).collect()
}

/// Rebuilds a counter bank from a snapshot vector.
pub(crate) fn counters_from_vec(values: &[u64]) -> Result<Counters> {
    if values.len() != Counter::all().len() {
        return Err(Error::Corrupt(format!(
            "counter snapshot has {} entries, runtime has {}",
            values.len(),
            Counter::all().len()
        )));
    }
    let counters = Counters::new();
    for (&c, &v) in Counter::all().iter().zip(values) {
        counters.add(c, v);
    }
    Ok(counters)
}

/// A serialized [`CenterSet`].
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CenterSetSnap {
    pub dim: u32,
    pub ids: Vec<i64>,
    pub flat: Vec<f64>,
}

impl CenterSetSnap {
    pub fn from_set(set: &CenterSet) -> Self {
        let mut ids = Vec::with_capacity(set.len());
        let mut flat = Vec::with_capacity(set.len() * set.dim());
        for i in 0..set.len() {
            ids.push(set.id(i));
            flat.extend_from_slice(set.coords(i));
        }
        Self {
            dim: set.dim() as u32,
            ids,
            flat,
        }
    }

    pub fn to_set(&self) -> Result<CenterSet> {
        let dim = self.dim as usize;
        if dim == 0 || self.flat.len() != self.ids.len() * dim {
            return Err(Error::Corrupt("center set snapshot shape mismatch".into()));
        }
        let mut set = CenterSet::new(dim);
        for (i, &id) in self.ids.iter().enumerate() {
            set.push(id, &self.flat[i * dim..(i + 1) * dim]);
        }
        Ok(set)
    }
}

impl Writable for CenterSetSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.dim.write(buf);
        self.ids.write(buf);
        self.flat.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            dim: u32::read(buf)?,
            ids: Vec::read(buf)?,
            flat: Vec::read(buf)?,
        })
    }
}

/// A serialized [`JobTiming`].
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct TimingSnap {
    pub map: Vec<f64>,
    pub reduce: Vec<f64>,
    pub simulated: f64,
    pub wall: f64,
}

impl TimingSnap {
    pub fn from_timing(t: &JobTiming) -> Self {
        Self {
            map: t.map_durations.clone(),
            reduce: t.reduce_durations.clone(),
            simulated: t.simulated_secs,
            wall: t.wall_secs,
        }
    }

    pub fn to_timing(&self) -> JobTiming {
        JobTiming {
            map_durations: self.map.clone(),
            reduce_durations: self.reduce.clone(),
            simulated_secs: self.simulated,
            wall_secs: self.wall,
        }
    }
}

impl Writable for TimingSnap {
    fn write(&self, buf: &mut Vec<u8>) {
        self.map.write(buf);
        self.reduce.write(buf);
        self.simulated.write(buf);
        self.wall.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            map: Vec::read(buf)?,
            reduce: Vec::read(buf)?,
            simulated: f64::read(buf)?,
            wall: f64::read(buf)?,
        })
    }
}

/// The engine: a [`JobRunner`] plus the cross-cutting driver
/// configuration (execution mode, accelerators, journaling).
///
/// [`JobRunner`]: gmr_mapreduce::runtime::JobRunner
pub struct Engine {
    runner: gmr_mapreduce::runtime::JobRunner,
    mode: ExecutionMode,
    kd_index: bool,
    pruning: bool,
    backend: KernelBackend,
    tile_workers: usize,
    spill_threshold: usize,
    checkpoint_dir: Option<String>,
}

impl Engine {
    /// Creates an engine on `runner`'s cluster with default settings:
    /// on-disk execution, no accelerators, no journaling.
    pub fn new(runner: gmr_mapreduce::runtime::JobRunner) -> Self {
        Self {
            runner,
            mode: ExecutionMode::OnDisk,
            kd_index: false,
            pruning: false,
            backend: KernelBackend::Auto,
            tile_workers: 1,
            spill_threshold: JobConfig::default().spill_threshold_records,
            checkpoint_dir: None,
        }
    }

    /// Creates an engine running as a single-tenant client of a
    /// multi-tenant [`gmr_mapreduce::scheduler::JobTracker`]: the engine
    /// drives the named queue's runner (a clone sharing the queue's
    /// epoch stream and the tracker's DFS), so results are bit-identical
    /// to [`Engine::new`] on an untracked runner with the same cluster,
    /// while the tracker arbitrates the queue's slot demands against
    /// other tenants.
    pub fn for_tenant(tracker: &gmr_mapreduce::scheduler::JobTracker, queue: &str) -> Result<Self> {
        Ok(Self::new(tracker.runner(queue)?.clone()))
    }

    /// Selects disk-based (Hadoop-style) or cached (Spark-style)
    /// execution. See [`ExecutionMode`].
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables the k-d-tree nearest-center index inside every prepared
    /// center set of the run. Results are identical; the
    /// distance-evaluation counters drop.
    pub fn with_kd_index(mut self, kd_index: bool) -> Self {
        self.kd_index = kd_index;
        self
    }

    /// Enables triangle-inequality center pruning inside every prepared
    /// center set (ignored when the k-d index is also enabled, which
    /// subsumes it).
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the cost-neutral kernel backend for the default
    /// cached-map fast path (see [`KernelBackend`]); results and
    /// counters are bit-identical for every choice, only wall time
    /// changes. The default, [`KernelBackend::Auto`], picks per job
    /// from the center set's shape.
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker-thread count for the blocked kernel's
    /// deterministic parallel point tiles (default 1 = inline).
    /// Execution stays byte-identical — emissions, counters,
    /// checkpoints — for every value.
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }

    /// Journals state into a DFS checkpoint directory after `fresh` and
    /// after every iteration boundary, enabling [`Engine::resume`].
    pub fn with_checkpoints(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The underlying job runner.
    pub fn runner(&self) -> &gmr_mapreduce::runtime::JobRunner {
        &self.runner
    }

    fn journal(&self) -> Option<RunJournal> {
        self.checkpoint_dir
            .as_ref()
            .map(|dir| RunJournal::new(Arc::clone(self.runner.dfs()), dir.clone()))
    }

    /// Runs `algo` against the DFS text file at `input` from a fresh
    /// initial state.
    pub fn run<A: IterativeAlgorithm>(&self, algo: &A, input: &str) -> Result<A::Output> {
        let wall = Instant::now();
        // A fresh run starts at job epoch 0 so node-crash draws are a
        // pure function of the fault plan and the job sequence.
        self.runner.sync_job_epochs(0);
        let mut ctx = EngineCtx::fresh(self, input);
        let state = algo.fresh(&mut ctx)?;
        ctx.build_cache(algo.dim(&state)?, true)?;
        if let Some(journal) = self.journal() {
            journal.reset();
            ctx.commit::<A>(&journal, algo.seq(&state), &algo.snapshot(&state))?;
        }
        self.drive(algo, state, ctx, wall)
    }

    /// Resumes an interrupted checkpointed run from its newest intact
    /// snapshot, continuing to a result bit-identical to an
    /// uninterrupted [`Engine::run`]. Falls back to a fresh run when
    /// the journal holds no valid checkpoint; errors when the engine
    /// was built without [`Engine::with_checkpoints`].
    pub fn resume<A: IterativeAlgorithm>(&self, algo: &A, input: &str) -> Result<A::Output> {
        let wall = Instant::now();
        let journal = self.journal().ok_or_else(|| no_journal_error(A::NAME))?;
        let ckpt = match journal.latest()? {
            Some(c) => c,
            None => return self.run(algo, input),
        };
        let (totals, snap) = decode_frame::<A>(&ckpt.payload)?;
        let state = algo.restore(snap)?;
        // Fast-forward the job-epoch counter past the jobs the restored
        // totals already account for, so every remaining job sees the
        // same node weather as in the uninterrupted run.
        self.runner.sync_job_epochs(totals.jobs);
        let mut ctx = EngineCtx::resumed(self, input, totals);
        if A::CHARGE_COMMITS {
            // Re-apply the loaded checkpoint's own commit charge: the
            // snapshot was serialized before it, so the uninterrupted
            // run added it right after this point in its accumulation
            // order.
            ctx.apply_commit_charge(ckpt.stored_bytes);
        }
        // Rebuild the point cache (physical re-read only; the logical
        // read is already in the restored totals).
        ctx.build_cache(algo.dim(&state)?, false)?;
        self.drive(algo, state, ctx, wall)
    }

    /// The shared driver loop: plan → execute → apply until the
    /// algorithm converges, with a checkpoint at every boundary.
    fn drive<A: IterativeAlgorithm>(
        &self,
        algo: &A,
        mut state: A::State,
        mut ctx: EngineCtx<'_>,
        wall: Instant,
    ) -> Result<A::Output> {
        let journal = self.journal();
        let mut failure: Option<Error> = None;
        'run: while !algo.done(&state) {
            ctx.seg = SegmentStats::default();
            loop {
                let wave = algo.plan(&mut state, &ctx)?;
                let mut outputs = Vec::with_capacity(wave.len());
                let mut task_failure: Option<Error> = None;
                for job in wave {
                    match ctx.execute(job) {
                        Ok(out) => outputs.push(out),
                        Err(
                            e @ (Error::HeapSpace { .. }
                            | Error::AttemptsExhausted { .. }
                            | Error::Degenerate(_)
                            | Error::ReplicasLost { .. }),
                        ) => {
                            // A job exhausted its task-attempt budget:
                            // absorbable, if the algorithm agrees.
                            task_failure = Some(e);
                            break;
                        }
                        // Environment/configuration errors — and the
                        // injected driver crash, which a dying process
                        // cannot catch — propagate.
                        Err(e) => return Err(e),
                    }
                }
                if let Some(e) = task_failure {
                    ctx.fold_segment();
                    failure = Some(algo.on_task_failure(&mut state, e, &ctx.seg)?);
                    break 'run;
                }
                match algo.apply(&mut state, outputs, &ctx.seg)? {
                    Step::Continue => {}
                    Step::Boundary => break,
                }
            }
            ctx.fold_segment();
            if let Some(journal) = &journal {
                ctx.commit::<A>(journal, algo.seq(&state), &algo.snapshot(&state))?;
            }
        }
        let stats = ctx.stats(wall, failure);
        algo.finish(state, &mut ctx, stats)
    }
}

/// The engine's per-run context: input binding, optional point cache,
/// and the run totals. Algorithms use it to sample, prepare center
/// sets, size reduce waves, and (in `finish`) run post-loop jobs.
pub struct EngineCtx<'e> {
    engine: &'e Engine,
    input: &'e str,
    cache: Option<PointCache>,
    totals: Totals,
    seg: SegmentStats,
}

impl<'e> EngineCtx<'e> {
    fn fresh(engine: &'e Engine, input: &'e str) -> Self {
        Self {
            engine,
            input,
            cache: None,
            totals: Totals::default(),
            seg: SegmentStats::default(),
        }
    }

    fn resumed(engine: &'e Engine, input: &'e str, totals: Totals) -> Self {
        Self {
            engine,
            input,
            cache: None,
            totals,
            seg: SegmentStats::default(),
        }
    }

    /// The input path this run is bound to.
    pub fn input(&self) -> &str {
        self.input
    }

    /// The simulated cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        self.engine.runner.cluster()
    }

    /// Caps a wanted reduce-task count by the cluster's reduce slots
    /// (at least one task).
    pub fn reduce_tasks(&self, wanted: usize) -> usize {
        wanted
            .max(1)
            .min(self.cluster().total_reduce_slots().max(1))
    }

    /// All reduce slots of the cluster (at least one) — for jobs whose
    /// key space is not center-bounded.
    pub fn reduce_slots(&self) -> usize {
        self.cluster().total_reduce_slots().max(1)
    }

    /// Wires the engine's configured accelerator into a center set
    /// bound for a job. The opt-in k-d index / triangle pruning
    /// accelerators (which change the charged evaluation counts) take
    /// precedence; otherwise the cost-neutral speed backend and the
    /// parallel-tile worker count are attached, so every distance-heavy
    /// mapper inherits the fast path with zero per-mapper changes.
    pub fn prepare(&self, set: CenterSet) -> CenterSet {
        if set.is_empty() {
            set
        } else if self.engine.kd_index {
            set.with_kd_index()
        } else if self.engine.pruning {
            set.with_triangle_prune()
        } else {
            set.with_backend(self.engine.backend)
                .with_tile_workers(self.engine.tile_workers)
        }
    }

    /// Serial reservoir sample of `count` points — one charged dataset
    /// read, exactly like the paper's `PickInitialCenters`.
    pub fn sample(&mut self, count: usize, seed: u64) -> Result<Dataset> {
        let sample = sample_points(self.engine.runner.dfs(), self.input, count, seed)?;
        self.totals.reads += 1;
        Ok(sample)
    }

    /// Runs one planned job against the bound source, absorbing its
    /// counters and clock into the run totals, then fires the injected
    /// driver crash if this job boundary is the configured one. The
    /// crash strikes *before* the iteration-end checkpoint, so a
    /// resumed driver replays the interrupted iteration from its start
    /// — re-deriving identical job outcomes from the per-job fault
    /// draws.
    pub fn execute(&mut self, job: PlannedJob) -> Result<JobOutputs> {
        let config = JobConfig {
            num_reduce_tasks: job.reducers,
            spill_threshold_records: self.engine.spill_threshold,
        };
        let erased = match &self.cache {
            Some(cache) => (job.run)(&Submission::cached(&self.engine.runner, cache), &config)?,
            None => {
                // One logical dataset read per disk-based job, charged
                // whether or not the job succeeds (the runtime scans
                // the input before tasks can fail).
                self.totals.reads += 1;
                (job.run)(
                    &Submission::streaming(&self.engine.runner, self.input),
                    &config,
                )?
            }
        };
        self.totals.counters.merge(&erased.counters);
        self.seg.simulated_secs += erased.timing.simulated_secs;
        self.seg.jobs += 1;
        self.totals.jobs += 1;
        let boundary = self.totals.jobs;
        if self.cluster().faults.driver_crashes_at(boundary) {
            return Err(Error::DriverCrash { boundary });
        }
        Ok(JobOutputs {
            output: erased.output,
            timing: erased.timing,
        })
    }

    /// Spark-style mode: parse the dataset once, pin it in memory.
    /// `charge_read` distinguishes a fresh build (one logical read)
    /// from a resume rebuild (physical re-read only).
    fn build_cache(&mut self, dim: usize, charge_read: bool) -> Result<()> {
        if self.engine.mode == ExecutionMode::Cached {
            self.cache = Some(PointCache::build(
                self.engine.runner.dfs(),
                self.input,
                dim,
                gmr_datagen::parse_point,
            )?);
            if charge_read {
                // The cache materialization scans the dataset once.
                self.totals.reads += 1;
            }
        }
        Ok(())
    }

    /// Folds the open iteration segment into the run totals. One f64
    /// addition per boundary — the same accumulation order as the
    /// pre-engine drivers, which is what keeps resumed clocks
    /// bit-identical.
    fn fold_segment(&mut self) {
        self.totals.simulated += self.seg.simulated_secs;
    }

    /// Serialize → commit → charge, in that order (the snapshot cannot
    /// contain the cost of its own commit).
    fn commit<A: IterativeAlgorithm>(
        &mut self,
        journal: &RunJournal,
        seq: u64,
        snap: &A::Snapshot,
    ) -> Result<()> {
        let payload = encode_frame::<A>(&self.totals, snap);
        let stored = journal.commit(seq, &payload)?;
        if A::CHARGE_COMMITS {
            self.apply_commit_charge(stored);
        }
        Ok(())
    }

    /// Charges one committed (or resume-replayed) checkpoint to the
    /// counters and the simulated clock.
    fn apply_commit_charge(&mut self, stored: u64) {
        self.totals.counters.inc(Counter::CheckpointsCommitted);
        self.totals.counters.add(Counter::CheckpointBytes, stored);
        self.totals.simulated += self.cluster().cost_model.checkpoint_secs(stored);
    }

    /// Snapshots the run totals for [`IterativeAlgorithm::finish`].
    fn stats(&self, wall: Instant, failure: Option<Error>) -> RunStats {
        let counters = Counters::new();
        counters.merge(&self.totals.counters);
        RunStats {
            simulated_secs: self.totals.simulated,
            wall_secs: wall.elapsed().as_secs_f64(),
            jobs: self.totals.jobs as usize,
            dataset_reads: self.totals.reads,
            counters,
            failure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_mapreduce::counters::Counter;

    #[test]
    fn counters_round_trip_via_vec() {
        let c = Counters::new();
        c.add(Counter::DistanceComputations, 99);
        c.max(Counter::HeapPeakBytes, 1234);
        let v = counters_to_vec(&c);
        let back = counters_from_vec(&v).unwrap();
        for &counter in Counter::all() {
            assert_eq!(back.get(counter), c.get(counter));
        }
        assert!(counters_from_vec(&[1, 2, 3]).is_err());
    }

    #[test]
    fn center_set_snap_round_trips() {
        let mut set = CenterSet::new(2);
        set.push(3, &[1.0, 2.0]);
        set.push(9, &[4.0, 5.0]);
        let snap = CenterSetSnap::from_set(&set);
        let back = snap.to_set().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.id(0), 3);
        assert_eq!(back.coords(1), &[4.0, 5.0]);
        assert!(CenterSetSnap {
            dim: 0,
            ids: vec![],
            flat: vec![]
        }
        .to_set()
        .is_err());
    }

    #[test]
    fn frames_reject_foreign_magic() {
        struct A;
        struct B;
        impl IterativeAlgorithm for A {
            type State = ();
            type Snapshot = u64;
            type Output = ();
            const NAME: &'static str = "A";
            const MAGIC: u32 = 0xAAAA_0001;
            fn fresh(&self, _ctx: &mut EngineCtx<'_>) -> Result<()> {
                Ok(())
            }
            fn dim(&self, _s: &()) -> Result<usize> {
                Ok(1)
            }
            fn done(&self, _s: &()) -> bool {
                true
            }
            fn seq(&self, _s: &()) -> u64 {
                0
            }
            fn plan(&self, _s: &mut (), _ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>> {
                Ok(Vec::new())
            }
            fn apply(&self, _s: &mut (), _o: Vec<JobOutputs>, _g: &SegmentStats) -> Result<Step> {
                Ok(Step::Boundary)
            }
            fn snapshot(&self, _s: &()) -> u64 {
                7
            }
            fn restore(&self, _snap: u64) -> Result<()> {
                Ok(())
            }
            fn finish(&self, _s: (), _ctx: &mut EngineCtx<'_>, _r: RunStats) -> Result<()> {
                Ok(())
            }
        }
        impl IterativeAlgorithm for B {
            type State = ();
            type Snapshot = u64;
            type Output = ();
            const NAME: &'static str = "B";
            const MAGIC: u32 = 0xBBBB_0001;
            fn fresh(&self, _ctx: &mut EngineCtx<'_>) -> Result<()> {
                Ok(())
            }
            fn dim(&self, _s: &()) -> Result<usize> {
                Ok(1)
            }
            fn done(&self, _s: &()) -> bool {
                true
            }
            fn seq(&self, _s: &()) -> u64 {
                0
            }
            fn plan(&self, _s: &mut (), _ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>> {
                Ok(Vec::new())
            }
            fn apply(&self, _s: &mut (), _o: Vec<JobOutputs>, _g: &SegmentStats) -> Result<Step> {
                Ok(Step::Boundary)
            }
            fn snapshot(&self, _s: &()) -> u64 {
                7
            }
            fn restore(&self, _snap: u64) -> Result<()> {
                Ok(())
            }
            fn finish(&self, _s: (), _ctx: &mut EngineCtx<'_>, _r: RunStats) -> Result<()> {
                Ok(())
            }
        }
        let totals = Totals::default();
        let payload = encode_frame::<A>(&totals, &7u64);
        let (back, snap) = decode_frame::<A>(&payload).unwrap();
        assert_eq!(back.jobs, 0);
        assert_eq!(snap, 7);
        assert!(decode_frame::<B>(&payload).is_err());
    }
}
