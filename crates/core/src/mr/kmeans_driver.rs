//! Plain MapReduce k-means driver: fixed k, iterated [`KMeansJob`]s.
//!
//! The "common MapReduce implementation of k-means" the paper's
//! abstract compares against; also the refinement engine behind the
//! Table 3 quality comparison (multi-k-means at `k = k_found`, 10
//! iterations).

use std::sync::Arc;
use std::time::Instant;

use gmr_linalg::Dataset;
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::counters::Counters;
use gmr_mapreduce::job::JobConfig;
use gmr_mapreduce::runtime::JobRunner;
use gmr_mapreduce::{Error, Result};

use crate::mr::centers::{apply_updates, CenterSet};
use crate::mr::driver::recover_task_failure;
use crate::mr::kmeans_job::KMeansJob;
use crate::mr::sample::sample_points;

/// Result of a MapReduce k-means run.
#[derive(Debug)]
pub struct MRKMeansResult {
    /// Final centers.
    pub centers: Dataset,
    /// Points per center after the last iteration.
    pub counts: Vec<u64>,
    /// Per-iteration job timings.
    pub iteration_timings: Vec<JobTiming>,
    /// Accumulated counters.
    pub counters: Counters,
    /// Total simulated seconds.
    pub simulated_secs: f64,
    /// Real wall-clock seconds.
    pub wall_secs: f64,
    /// The task failure that stopped iterating early, if any; centers
    /// and counts are then those of the last completed iteration.
    pub failure: Option<Error>,
}

/// MapReduce k-means with random serial initialization.
pub struct MRKMeans {
    runner: JobRunner,
    k: usize,
    iterations: usize,
    seed: u64,
}

impl MRKMeans {
    /// Creates the driver.
    ///
    /// # Panics
    /// Panics if `k == 0` or `iterations == 0`.
    pub fn new(runner: JobRunner, k: usize, iterations: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(iterations > 0, "need at least one iteration");
        Self {
            runner,
            k,
            iterations,
            seed,
        }
    }

    /// Runs on the DFS text file at `input`, initializing from a random
    /// sample (one serial dataset read), then iterating the job.
    pub fn run(&self, input: &str) -> Result<MRKMeansResult> {
        let sample = sample_points(self.runner.dfs(), input, self.k, self.seed)?;
        let mut centers = CenterSet::new(sample.dim());
        for i in 0..self.k {
            centers.push(i as i64, sample.row(i % sample.len()));
        }
        self.run_from(input, centers)
    }

    /// Runs from explicit initial centers.
    pub fn run_from(&self, input: &str, mut centers: CenterSet) -> Result<MRKMeansResult> {
        let wall = Instant::now();
        let counters = Counters::new();
        let mut timings = Vec::with_capacity(self.iterations);
        let mut simulated = 0.0;
        let reducers = self
            .runner
            .cluster()
            .total_reduce_slots()
            .min(centers.len())
            .max(1);
        let mut counts = vec![0u64; centers.len()];
        let mut failure: Option<Error> = None;
        for _ in 0..self.iterations {
            let job = KMeansJob::new(Arc::new(centers.clone()));
            let run = self
                .runner
                .run(&job, input, &JobConfig::with_reducers(reducers));
            let result = match recover_task_failure(&mut failure, run)? {
                Some(r) => r,
                None => break,
            };
            counters.merge(&result.counters);
            simulated += result.timing.simulated_secs;
            let (next, c) = apply_updates(&centers, &result.output);
            centers = next;
            counts = c;
            timings.push(result.timing);
        }
        Ok(MRKMeansResult {
            centers: centers.to_dataset(),
            counts,
            iteration_timings: timings,
            counters,
            simulated_secs: simulated,
            wall_secs: wall.elapsed().as_secs_f64(),
            failure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{format_point, GaussianMixture};
    use gmr_linalg::euclidean;
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;

    #[test]
    fn converges_on_separated_blobs() {
        let d = GaussianMixture::paper_r10(2000, 5, 16).generate().unwrap();
        let dfs = Arc::new(Dfs::new(64 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let r = MRKMeans::new(runner, 5, 10, 5).run("pts").unwrap();
        assert_eq!(r.centers.len(), 5);
        assert_eq!(r.counts.iter().sum::<u64>(), 2000);
        assert_eq!(r.iteration_timings.len(), 10);
        // Random init can double-book a blob and strand another (that
        // is exactly the local-minimum behaviour Figure 4 illustrates),
        // so only require that most true centers are recovered.
        let hit = d
            .true_centers
            .rows()
            .filter(|t| {
                r.centers
                    .rows()
                    .map(|c| euclidean(c, t))
                    .fold(f64::INFINITY, f64::min)
                    < 1.0
            })
            .count();
        assert!(hit >= 3, "only {hit}/5 true centers recovered");
    }

    #[test]
    fn mr_matches_serial_lloyd_from_same_start() {
        let d = GaussianMixture::paper_r10(600, 3, 19).generate().unwrap();
        let dfs = Arc::new(Dfs::new(8 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();

        let init =
            crate::serial::initial_centers(&d.points, 3, crate::serial::InitStrategy::Random, 5);
        let mut start = CenterSet::new(10);
        for (i, row) in init.rows().enumerate() {
            start.push(i as i64, row);
        }
        let mr = MRKMeans::new(runner, 3, 4, 0)
            .run_from("pts", start)
            .unwrap();
        let serial = crate::serial::kmeans_from(
            &d.points,
            init,
            &crate::config::KMeansConfig::new(3).with_iterations(4),
        );
        for (a, b) in mr.centers.rows().zip(serial.centers.rows()) {
            assert!(
                euclidean(a, b) < 1e-6,
                "MR and serial Lloyd diverged: {a:?} vs {b:?}"
            );
        }
    }
}
