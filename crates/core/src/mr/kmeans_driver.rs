//! Plain MapReduce k-means driver: fixed k, iterated [`KMeansJob`]s.
//!
//! The "common MapReduce implementation of k-means" the paper's
//! abstract compares against; also the refinement engine behind the
//! Table 3 quality comparison (multi-k-means at `k = k_found`, 10
//! iterations).

use std::sync::Arc;
use std::time::Instant;

use gmr_linalg::Dataset;
use gmr_mapreduce::checkpoint::{no_journal_error, RunJournal};
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::counters::Counters;
use gmr_mapreduce::job::JobConfig;
use gmr_mapreduce::runtime::JobRunner;
use gmr_mapreduce::{Error, Result};

use crate::mr::centers::{apply_updates, CenterSet};
use crate::mr::checkpoint::{
    apply_commit_charge, commit_snapshot, counters_from_vec, counters_to_vec, decode_snapshot,
    encode_snapshot, CenterSetSnap, KMeansSnapshot, TimingSnap, KMEANS_MAGIC,
};
use crate::mr::driver::recover_task_failure;
use crate::mr::kmeans_job::KMeansJob;
use crate::mr::sample::sample_points;

/// Result of a MapReduce k-means run.
#[derive(Debug)]
pub struct MRKMeansResult {
    /// Final centers.
    pub centers: Dataset,
    /// Points per center after the last iteration.
    pub counts: Vec<u64>,
    /// Per-iteration job timings.
    pub iteration_timings: Vec<JobTiming>,
    /// Accumulated counters.
    pub counters: Counters,
    /// Total simulated seconds.
    pub simulated_secs: f64,
    /// Real wall-clock seconds.
    pub wall_secs: f64,
    /// The task failure that stopped iterating early, if any; centers
    /// and counts are then those of the last completed iteration.
    pub failure: Option<Error>,
}

/// The driver's complete loop state at an iteration boundary.
struct KState {
    /// Completed Lloyd iterations.
    iteration: usize,
    centers: CenterSet,
    counts: Vec<u64>,
    timings: Vec<JobTiming>,
    simulated: f64,
    counters: Counters,
}

/// MapReduce k-means with random serial initialization.
pub struct MRKMeans {
    runner: JobRunner,
    k: usize,
    iterations: usize,
    seed: u64,
    checkpoint_dir: Option<String>,
}

impl MRKMeans {
    /// Creates the driver.
    ///
    /// # Panics
    /// Panics if `k == 0` or `iterations == 0`.
    pub fn new(runner: JobRunner, k: usize, iterations: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(iterations > 0, "need at least one iteration");
        Self {
            runner,
            k,
            iterations,
            seed,
            checkpoint_dir: None,
        }
    }

    /// Journals driver state into a DFS checkpoint directory after
    /// initialization and after every iteration, enabling
    /// [`MRKMeans::resume`].
    pub fn with_checkpoints(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    fn journal(&self) -> Option<RunJournal> {
        self.checkpoint_dir
            .as_ref()
            .map(|dir| RunJournal::new(Arc::clone(self.runner.dfs()), dir.clone()))
    }

    /// Runs on the DFS text file at `input`, initializing from a random
    /// sample (one serial dataset read), then iterating the job.
    pub fn run(&self, input: &str) -> Result<MRKMeansResult> {
        let sample = sample_points(self.runner.dfs(), input, self.k, self.seed)?;
        let mut centers = CenterSet::new(sample.dim());
        for i in 0..self.k {
            centers.push(i as i64, sample.row(i % sample.len()));
        }
        self.run_from(input, centers)
    }

    /// Runs from explicit initial centers.
    pub fn run_from(&self, input: &str, centers: CenterSet) -> Result<MRKMeansResult> {
        let wall = Instant::now();
        let counts = vec![0u64; centers.len()];
        let mut state = KState {
            iteration: 0,
            centers,
            counts,
            timings: Vec::with_capacity(self.iterations),
            simulated: 0.0,
            counters: Counters::new(),
        };
        if let Some(journal) = self.journal() {
            journal.reset();
            let payload = encode_snapshot(KMEANS_MAGIC, &snapshot_of(&state));
            state.simulated += commit_snapshot(
                &journal,
                0,
                &payload,
                &state.counters,
                &self.runner.cluster().cost_model,
            )?;
        }
        self.drive(input, state, wall)
    }

    /// Resumes an interrupted checkpointed run from its newest intact
    /// snapshot (the initial centers travel in the seq-0 snapshot, so
    /// explicit-init runs resume too), continuing to a result
    /// bit-identical to an uninterrupted run. Falls back to a fresh
    /// [`MRKMeans::run`] when the journal holds no valid checkpoint.
    /// Requires [`MRKMeans::with_checkpoints`].
    pub fn resume(&self, input: &str) -> Result<MRKMeansResult> {
        let wall = Instant::now();
        let journal = self.journal().ok_or_else(|| no_journal_error("MRKMeans"))?;
        let ckpt = match journal.latest()? {
            Some(c) => c,
            None => return self.run(input),
        };
        let snap: KMeansSnapshot = decode_snapshot(KMEANS_MAGIC, &ckpt.payload)?;
        let mut state = restore_state(snap)?;
        state.simulated += apply_commit_charge(
            &state.counters,
            &self.runner.cluster().cost_model,
            ckpt.stored_bytes,
        );
        self.drive(input, state, wall)
    }

    fn drive(&self, input: &str, mut state: KState, wall: Instant) -> Result<MRKMeansResult> {
        let journal = self.journal();
        let reducers = self
            .runner
            .cluster()
            .total_reduce_slots()
            .min(state.centers.len())
            .max(1);
        let mut failure: Option<Error> = None;
        while state.iteration < self.iterations {
            let job = KMeansJob::new(Arc::new(state.centers.clone()));
            let run = self
                .runner
                .run(&job, input, &JobConfig::with_reducers(reducers));
            let result = match recover_task_failure(&mut failure, run)? {
                Some(r) => r,
                None => break,
            };
            state.counters.merge(&result.counters);
            state.simulated += result.timing.simulated_secs;
            let (next, c) = apply_updates(&state.centers, &result.output);
            state.centers = next;
            state.counts = c;
            state.timings.push(result.timing);
            state.iteration += 1;

            // Injected driver crash at this job boundary (before the
            // iteration's checkpoint — resume replays the iteration).
            let boundary = state.iteration as u64;
            if self.runner.cluster().faults.driver_crashes_at(boundary) {
                return Err(Error::DriverCrash { boundary });
            }

            if let Some(journal) = &journal {
                let payload = encode_snapshot(KMEANS_MAGIC, &snapshot_of(&state));
                state.simulated += commit_snapshot(
                    journal,
                    state.iteration as u64,
                    &payload,
                    &state.counters,
                    &self.runner.cluster().cost_model,
                )?;
            }
        }
        Ok(MRKMeansResult {
            centers: state.centers.to_dataset(),
            counts: state.counts,
            iteration_timings: state.timings,
            counters: state.counters,
            simulated_secs: state.simulated,
            wall_secs: wall.elapsed().as_secs_f64(),
            failure,
        })
    }
}

/// Serializes the driver state for the journal.
fn snapshot_of(state: &KState) -> KMeansSnapshot {
    KMeansSnapshot {
        iteration: state.iteration as u64,
        centers: CenterSetSnap::from_set(&state.centers),
        counts: state.counts.clone(),
        timings: state.timings.iter().map(TimingSnap::from_timing).collect(),
        simulated: state.simulated,
        counters: counters_to_vec(&state.counters),
    }
}

/// Rebuilds driver state from a decoded snapshot.
fn restore_state(snap: KMeansSnapshot) -> Result<KState> {
    let counters = counters_from_vec(&snap.counters)?;
    Ok(KState {
        iteration: snap.iteration as usize,
        centers: snap.centers.to_set()?,
        counts: snap.counts,
        timings: snap.timings.iter().map(TimingSnap::to_timing).collect(),
        simulated: snap.simulated,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{format_point, GaussianMixture};
    use gmr_linalg::euclidean;
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;

    #[test]
    fn converges_on_separated_blobs() {
        let d = GaussianMixture::paper_r10(2000, 5, 16).generate().unwrap();
        let dfs = Arc::new(Dfs::new(64 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let r = MRKMeans::new(runner, 5, 10, 5).run("pts").unwrap();
        assert_eq!(r.centers.len(), 5);
        assert_eq!(r.counts.iter().sum::<u64>(), 2000);
        assert_eq!(r.iteration_timings.len(), 10);
        // Random init can double-book a blob and strand another (that
        // is exactly the local-minimum behaviour Figure 4 illustrates),
        // so only require that most true centers are recovered.
        let hit = d
            .true_centers
            .rows()
            .filter(|t| {
                r.centers
                    .rows()
                    .map(|c| euclidean(c, t))
                    .fold(f64::INFINITY, f64::min)
                    < 1.0
            })
            .count();
        assert!(hit >= 3, "only {hit}/5 true centers recovered");
    }

    #[test]
    fn mr_matches_serial_lloyd_from_same_start() {
        let d = GaussianMixture::paper_r10(600, 3, 19).generate().unwrap();
        let dfs = Arc::new(Dfs::new(8 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();

        let init =
            crate::serial::initial_centers(&d.points, 3, crate::serial::InitStrategy::Random, 5);
        let mut start = CenterSet::new(10);
        for (i, row) in init.rows().enumerate() {
            start.push(i as i64, row);
        }
        let mr = MRKMeans::new(runner, 3, 4, 0)
            .run_from("pts", start)
            .unwrap();
        let serial = crate::serial::kmeans_from(
            &d.points,
            init,
            &crate::config::KMeansConfig::new(3).with_iterations(4),
        );
        for (a, b) in mr.centers.rows().zip(serial.centers.rows()) {
            assert!(
                euclidean(a, b) < 1e-6,
                "MR and serial Lloyd diverged: {a:?} vs {b:?}"
            );
        }
    }
}
