//! Plain MapReduce k-means driver: fixed k, iterated [`KMeansJob`]s.
//!
//! The "common MapReduce implementation of k-means" the paper's
//! abstract compares against; also the refinement engine behind the
//! Table 3 quality comparison (multi-k-means at `k = k_found`, 10
//! iterations). The driver is a [`KMeansAlgo`] state machine on the
//! generic [`Engine`]; [`MRKMeans`] is the thin façade keeping the
//! original constructor-style API.

use std::sync::Arc;

use gmr_linalg::Dataset;
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::counters::Counters;
use gmr_mapreduce::runtime::JobRunner;
use gmr_mapreduce::writable::Writable;
use gmr_mapreduce::{Error, Result};

use crate::mr::centers::{apply_updates, CenterSet, CenterUpdate};
use crate::mr::engine::{
    CenterSetSnap, Engine, EngineCtx, IterativeAlgorithm, JobOutputs, PlannedJob, RunStats,
    SegmentStats, Step, TimingSnap,
};
use crate::mr::kmeans_job::KMeansJob;

/// Result of a MapReduce k-means run.
#[derive(Debug)]
pub struct MRKMeansResult {
    /// Final centers.
    pub centers: Dataset,
    /// Points per center after the last iteration.
    pub counts: Vec<u64>,
    /// Per-iteration job timings.
    pub iteration_timings: Vec<JobTiming>,
    /// Accumulated counters.
    pub counters: Counters,
    /// Total simulated seconds.
    pub simulated_secs: f64,
    /// Real wall-clock seconds.
    pub wall_secs: f64,
    /// The task failure that stopped iterating early, if any; centers
    /// and counts are then those of the last completed iteration.
    pub failure: Option<Error>,
}

/// The driver's complete loop state at an iteration boundary.
pub struct KState {
    /// Completed Lloyd iterations.
    iteration: usize,
    centers: CenterSet,
    counts: Vec<u64>,
    timings: Vec<JobTiming>,
}

/// Journal wire form of [`KState`] (run totals travel in the engine's
/// frame, not here).
pub struct KMeansSnapshot {
    iteration: u64,
    centers: CenterSetSnap,
    counts: Vec<u64>,
    timings: Vec<TimingSnap>,
}

impl Writable for KMeansSnapshot {
    fn write(&self, buf: &mut Vec<u8>) {
        self.iteration.write(buf);
        self.centers.write(buf);
        self.counts.write(buf);
        self.timings.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Self {
            iteration: u64::read(buf)?,
            centers: CenterSetSnap::read(buf)?,
            counts: Vec::read(buf)?,
            timings: Vec::read(buf)?,
        })
    }
}

/// Iterated-Lloyd k-means as a pure state machine on the [`Engine`]:
/// one [`KMeansJob`] per iteration, every iteration a checkpointable
/// boundary.
pub struct KMeansAlgo {
    k: usize,
    iterations: usize,
    seed: u64,
    /// Explicit initial centers (bypasses the random sample).
    init: Option<CenterSet>,
}

impl IterativeAlgorithm for KMeansAlgo {
    type State = KState;
    type Snapshot = KMeansSnapshot;
    type Output = MRKMeansResult;

    const NAME: &'static str = "MRKMeans";
    const MAGIC: u32 = 0x4b4d_4e01;

    fn fresh(&self, ctx: &mut EngineCtx<'_>) -> Result<KState> {
        let centers = match &self.init {
            Some(init) => init.clone(),
            None => {
                let sample = ctx.sample(self.k, self.seed)?;
                let mut centers = CenterSet::new(sample.dim());
                for i in 0..self.k {
                    centers.push(i as i64, sample.row(i % sample.len()));
                }
                centers
            }
        };
        let counts = vec![0u64; centers.len()];
        Ok(KState {
            iteration: 0,
            centers,
            counts,
            timings: Vec::with_capacity(self.iterations),
        })
    }

    fn dim(&self, state: &KState) -> Result<usize> {
        Ok(state.centers.dim())
    }

    fn done(&self, state: &KState) -> bool {
        state.iteration >= self.iterations
    }

    fn seq(&self, state: &KState) -> u64 {
        state.iteration as u64
    }

    fn plan(&self, state: &mut KState, ctx: &EngineCtx<'_>) -> Result<Vec<PlannedJob>> {
        let job = KMeansJob::new(Arc::new(state.centers.clone()));
        let reducers = ctx.reduce_tasks(state.centers.len());
        Ok(vec![PlannedJob::new(job, reducers)])
    }

    fn apply(
        &self,
        state: &mut KState,
        mut outputs: Vec<JobOutputs>,
        _seg: &SegmentStats,
    ) -> Result<Step> {
        let (updates, timing) = outputs.remove(0).into_parts::<CenterUpdate>();
        let (next, counts) = apply_updates(&state.centers, &updates);
        state.centers = next;
        state.counts = counts;
        state.timings.push(timing);
        state.iteration += 1;
        Ok(Step::Boundary)
    }

    fn snapshot(&self, state: &KState) -> KMeansSnapshot {
        KMeansSnapshot {
            iteration: state.iteration as u64,
            centers: CenterSetSnap::from_set(&state.centers),
            counts: state.counts.clone(),
            timings: state.timings.iter().map(TimingSnap::from_timing).collect(),
        }
    }

    fn restore(&self, snap: KMeansSnapshot) -> Result<KState> {
        Ok(KState {
            iteration: snap.iteration as usize,
            centers: snap.centers.to_set()?,
            counts: snap.counts,
            timings: snap.timings.iter().map(TimingSnap::to_timing).collect(),
        })
    }

    fn on_task_failure(
        &self,
        _state: &mut KState,
        failure: Error,
        _seg: &SegmentStats,
    ) -> Result<Error> {
        // Degrade: surface the failure alongside the last completed
        // iteration's centers instead of losing the whole run.
        Ok(failure)
    }

    fn finish(
        &self,
        state: KState,
        _ctx: &mut EngineCtx<'_>,
        stats: RunStats,
    ) -> Result<MRKMeansResult> {
        Ok(MRKMeansResult {
            centers: state.centers.to_dataset(),
            counts: state.counts,
            iteration_timings: state.timings,
            counters: stats.counters,
            simulated_secs: stats.simulated_secs,
            wall_secs: stats.wall_secs,
            failure: stats.failure,
        })
    }
}

/// MapReduce k-means with random serial initialization.
pub struct MRKMeans {
    runner: JobRunner,
    k: usize,
    iterations: usize,
    seed: u64,
    tile_workers: usize,
    checkpoint_dir: Option<String>,
}

impl MRKMeans {
    /// Creates the driver.
    ///
    /// # Panics
    /// Panics if `k == 0` or `iterations == 0`.
    pub fn new(runner: JobRunner, k: usize, iterations: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(iterations > 0, "need at least one iteration");
        Self {
            runner,
            k,
            iterations,
            seed,
            tile_workers: 1,
            checkpoint_dir: None,
        }
    }

    /// Journals driver state into a DFS checkpoint directory after
    /// initialization and after every iteration, enabling
    /// [`MRKMeans::resume`].
    pub fn with_checkpoints(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Splits every cached map block's kernel work across `workers`
    /// deterministic parallel tiles. Results, counters and checkpoints
    /// are byte-identical for every value; only wall time changes.
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }

    fn engine(&self) -> Engine {
        let engine = Engine::new(self.runner.clone()).with_tile_workers(self.tile_workers);
        match &self.checkpoint_dir {
            Some(dir) => engine.with_checkpoints(dir.clone()),
            None => engine,
        }
    }

    fn algo(&self, init: Option<CenterSet>) -> KMeansAlgo {
        KMeansAlgo {
            k: self.k,
            iterations: self.iterations,
            seed: self.seed,
            init,
        }
    }

    /// Runs on the DFS text file at `input`, initializing from a random
    /// sample (one serial dataset read), then iterating the job.
    pub fn run(&self, input: &str) -> Result<MRKMeansResult> {
        self.engine().run(&self.algo(None), input)
    }

    /// Runs from explicit initial centers.
    pub fn run_from(&self, input: &str, centers: CenterSet) -> Result<MRKMeansResult> {
        self.engine().run(&self.algo(Some(centers)), input)
    }

    /// Resumes an interrupted checkpointed run from its newest intact
    /// snapshot (the initial centers travel in the seq-0 snapshot, so
    /// explicit-init runs resume too), continuing to a result
    /// bit-identical to an uninterrupted run. Falls back to a fresh
    /// [`MRKMeans::run`] when the journal holds no valid checkpoint.
    /// Requires [`MRKMeans::with_checkpoints`].
    pub fn resume(&self, input: &str) -> Result<MRKMeansResult> {
        self.engine().resume(&self.algo(None), input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{format_point, GaussianMixture};
    use gmr_linalg::euclidean;
    use gmr_mapreduce::cluster::ClusterConfig;
    use gmr_mapreduce::dfs::Dfs;

    #[test]
    fn converges_on_separated_blobs() {
        let d = GaussianMixture::paper_r10(2000, 5, 16).generate().unwrap();
        let dfs = Arc::new(Dfs::new(64 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
        let r = MRKMeans::new(runner, 5, 10, 5).run("pts").unwrap();
        assert_eq!(r.centers.len(), 5);
        assert_eq!(r.counts.iter().sum::<u64>(), 2000);
        assert_eq!(r.iteration_timings.len(), 10);
        // Random init can double-book a blob and strand another (that
        // is exactly the local-minimum behaviour Figure 4 illustrates),
        // so only require that most true centers are recovered.
        let hit = d
            .true_centers
            .rows()
            .filter(|t| {
                r.centers
                    .rows()
                    .map(|c| euclidean(c, t))
                    .fold(f64::INFINITY, f64::min)
                    < 1.0
            })
            .count();
        assert!(hit >= 3, "only {hit}/5 true centers recovered");
    }

    #[test]
    fn mr_matches_serial_lloyd_from_same_start() {
        let d = GaussianMixture::paper_r10(600, 3, 19).generate().unwrap();
        let dfs = Arc::new(Dfs::new(8 * 1024));
        dfs.put_lines("pts", d.points.rows().map(format_point))
            .unwrap();
        let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();

        let init =
            crate::serial::initial_centers(&d.points, 3, crate::serial::InitStrategy::Random, 5);
        let mut start = CenterSet::new(10);
        for (i, row) in init.rows().enumerate() {
            start.push(i as i64, row);
        }
        let mr = MRKMeans::new(runner, 3, 4, 0)
            .run_from("pts", start)
            .unwrap();
        let serial = crate::serial::kmeans_from(
            &d.points,
            init,
            &crate::config::KMeansConfig::new(3).with_iterations(4),
        );
        for (a, b) in mr.centers.rows().zip(serial.centers.rows()) {
            assert!(
                euclidean(a, b) < 1e-6,
                "MR and serial Lloyd diverged: {a:?} vs {b:?}"
            );
        }
    }
}
