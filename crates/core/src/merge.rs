//! Post-processing merge of close centers.
//!
//! The MapReduce G-means "analyzes all clusters in parallel and will
//! thus try to double the number of centers at each iteration. As a
//! result, it may eventually overestimate the value of k. Future
//! versions of the algorithm will thus add a post-processing step to
//! merge close centers" (§3). The paper leaves that step as future work
//! and reports a constant ≈1.5× overestimate (Table 1); this module
//! implements it: single-linkage agglomeration of centers closer than a
//! distance threshold, replacing each group by its size-weighted mean.

use gmr_linalg::{squared_euclidean, Dataset};

/// Result of merging close centers.
#[derive(Clone, Debug)]
pub struct MergeResult {
    /// Surviving centers (size-weighted means of merged groups).
    pub centers: Dataset,
    /// Combined point count behind each surviving center.
    pub counts: Vec<u64>,
    /// How many original centers were absorbed into another.
    pub merged_away: usize,
}

/// Merges centers closer than `min_distance` (single linkage): if
/// `d(a, b) < min_distance` the two belong to the same group, and
/// groups are replaced by their count-weighted mean.
///
/// `counts` weights the merge; pass all-ones when sizes are unknown.
///
/// # Panics
/// Panics if `counts.len() != centers.len()` or `min_distance < 0`.
pub fn merge_close_centers(centers: &Dataset, counts: &[u64], min_distance: f64) -> MergeResult {
    assert_eq!(counts.len(), centers.len(), "one count per center");
    assert!(min_distance >= 0.0, "negative distance threshold");
    let n = centers.len();
    let threshold2 = min_distance * min_distance;

    // Union-find over centers.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }
    #[allow(clippy::needless_range_loop)] // i and j index two views of `centers`
    for i in 0..n {
        for j in (i + 1)..n {
            if squared_euclidean(centers.row(i), centers.row(j)) < threshold2 {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    // Accumulate weighted means per root, in first-seen order for
    // deterministic output.
    let dim = centers.dim();
    let mut order: Vec<usize> = Vec::new();
    let mut slot: Vec<Option<usize>> = vec![None; n];
    let mut sums: Vec<Vec<f64>> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    #[allow(clippy::needless_range_loop)] // i indexes counts, slot and centers together
    for i in 0..n {
        let root = find(&mut parent, i);
        let s = match slot[root] {
            Some(s) => s,
            None => {
                let s = order.len();
                slot[root] = Some(s);
                order.push(root);
                sums.push(vec![0.0; dim]);
                weights.push(0);
                s
            }
        };
        let w = counts[i].max(1); // zero-count centers still contribute position
        for (acc, c) in sums[s].iter_mut().zip(centers.row(i)) {
            *acc += c * w as f64;
        }
        weights[s] += w;
    }

    let mut merged = Dataset::with_capacity(dim, sums.len());
    for (sum, &w) in sums.iter().zip(&weights) {
        let inv = 1.0 / w as f64;
        let mean: Vec<f64> = sum.iter().map(|s| s * inv).collect();
        merged.push(&mean);
    }
    MergeResult {
        merged_away: n - merged.len(),
        centers: merged,
        counts: weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distant_centers_survive() {
        let centers = Dataset::from_flat(2, vec![0.0, 0.0, 10.0, 10.0]);
        let r = merge_close_centers(&centers, &[5, 5], 1.0);
        assert_eq!(r.centers.len(), 2);
        assert_eq!(r.merged_away, 0);
    }

    #[test]
    fn close_pair_merges_to_weighted_mean() {
        let centers = Dataset::from_flat(1, vec![0.0, 1.0]);
        let r = merge_close_centers(&centers, &[3, 1], 2.0);
        assert_eq!(r.centers.len(), 1);
        assert_eq!(r.merged_away, 1);
        // (3·0 + 1·1) / 4
        assert!((r.centers.row(0)[0] - 0.25).abs() < 1e-12);
        assert_eq!(r.counts, vec![4]);
    }

    #[test]
    fn chains_merge_transitively() {
        // 0 — 1 — 2 each 1 apart with threshold 1.5: single linkage
        // glues all three even though d(0,2) = 2 > threshold.
        let centers = Dataset::from_flat(1, vec![0.0, 1.0, 2.0]);
        let r = merge_close_centers(&centers, &[1, 1, 1], 1.5);
        assert_eq!(r.centers.len(), 1);
        assert!((r.centers.row(0)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_is_identity() {
        let centers = Dataset::from_flat(1, vec![0.0, 0.5, 1.0]);
        let r = merge_close_centers(&centers, &[1, 1, 1], 0.0);
        assert_eq!(r.centers, centers);
        assert_eq!(r.merged_away, 0);
    }

    #[test]
    fn zero_count_center_contributes_position_only() {
        let centers = Dataset::from_flat(1, vec![0.0, 1.0]);
        let r = merge_close_centers(&centers, &[0, 0], 2.0);
        assert_eq!(r.centers.len(), 1);
        assert!((r.centers.row(0)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let centers = Dataset::new(3);
        let r = merge_close_centers(&centers, &[], 1.0);
        assert!(r.centers.is_empty());
        assert_eq!(r.merged_away, 0);
    }

    proptest! {
        #[test]
        fn never_increases_center_count(
            coords in proptest::collection::vec(-100.0..100.0f64, 0..40),
            threshold in 0.0..50.0f64,
        ) {
            prop_assume!(coords.len() % 2 == 0);
            let centers = Dataset::from_flat(2, coords);
            let counts = vec![1u64; centers.len()];
            let r = merge_close_centers(&centers, &counts, threshold);
            prop_assert!(r.centers.len() <= centers.len());
            prop_assert_eq!(r.centers.len() + r.merged_away, centers.len());
            // Total weight is conserved.
            prop_assert_eq!(r.counts.iter().sum::<u64>(), centers.len() as u64);
        }

        /// After merging with threshold t, all surviving centers are
        /// groups whose representatives were originally ≥ t apart
        /// pairwise *between groups* — i.e. no two surviving centers
        /// came from centers that should have merged directly.
        #[test]
        fn merge_is_idempotent(
            coords in proptest::collection::vec(-10.0..10.0f64, 0..30),
            threshold in 0.1..5.0f64,
        ) {
            prop_assume!(coords.len() % 2 == 0);
            let centers = Dataset::from_flat(2, coords);
            let counts = vec![1u64; centers.len()];
            let once = merge_close_centers(&centers, &counts, threshold);
            // Merging again may still merge (weighted means can move
            // closer), but a fixed point is reached quickly; verify the
            // count never grows.
            let twice = merge_close_centers(&once.centers, &once.counts, threshold);
            prop_assert!(twice.centers.len() <= once.centers.len());
        }
    }
}
