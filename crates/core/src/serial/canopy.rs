//! Canopy clustering (McCallum, Nigam & Ungar, KDD 2000).
//!
//! The paper cites canopies twice: as a common way to "compute the
//! initial centers" for k-means, and as a pre-partitioning technique
//! for high-dimensional data (§2). The algorithm is a single cheap
//! pass: repeatedly pick a remaining point as a canopy center, pull
//! every point within the loose threshold `t1` into its canopy, and
//! remove points within the tight threshold `t2` from further
//! consideration. The canopy centers make good k-means seeds; the
//! (overlapping) canopy memberships bound which center/point pairs need
//! exact distances.

use gmr_linalg::{squared_euclidean, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One canopy: a center plus the indices of its (possibly shared)
/// members.
#[derive(Clone, Debug)]
pub struct Canopy {
    /// Index of the point chosen as the canopy center.
    pub center: usize,
    /// Indices of all points within `t1` of the center.
    pub members: Vec<usize>,
}

/// Result of a canopy pass.
#[derive(Clone, Debug)]
pub struct CanopyResult {
    /// The canopies, in creation order.
    pub canopies: Vec<Canopy>,
}

impl CanopyResult {
    /// Number of canopies (a cheap upper estimate of k, and the number
    /// of seeds this pass provides).
    pub fn k(&self) -> usize {
        self.canopies.len()
    }

    /// The canopy centers as a dataset (k-means seeds).
    pub fn centers(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::with_capacity(data.dim(), self.canopies.len());
        for c in &self.canopies {
            out.push(data.row(c.center));
        }
        out
    }
}

/// Runs canopy clustering with loose threshold `t1` and tight
/// threshold `t2`.
///
/// # Panics
/// Panics unless `t1 > t2 > 0` and `data` is nonempty.
pub fn canopy_clustering(data: &Dataset, t1: f64, t2: f64, seed: u64) -> CanopyResult {
    assert!(!data.is_empty(), "cannot canopy an empty dataset");
    assert!(
        t2 > 0.0 && t1 > t2,
        "need t1 > t2 > 0 (got t1={t1}, t2={t2})"
    );
    let t1_sq = t1 * t1;
    let t2_sq = t2 * t2;
    let mut rng = StdRng::seed_from_u64(seed);

    // `alive[i]` — still eligible to *found* a canopy.
    let mut alive: Vec<usize> = (0..data.len()).collect();
    let mut canopies = Vec::new();
    while !alive.is_empty() {
        let pick = rng.random_range(0..alive.len());
        let center = alive.swap_remove(pick);
        let center_row = data.row(center);

        let mut members = vec![center];
        // Membership is tested against every point (canopies overlap);
        // removal only against the alive list.
        for (i, row) in data.rows().enumerate() {
            if i == center {
                continue;
            }
            if squared_euclidean(center_row, row) <= t1_sq {
                members.push(i);
            }
        }
        alive.retain(|&i| squared_euclidean(center_row, data.row(i)) > t2_sq);
        canopies.push(Canopy { center, members });
    }
    CanopyResult { canopies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::GaussianMixture;

    #[test]
    fn well_separated_blobs_are_each_anchored_by_a_canopy() {
        let d = GaussianMixture::paper_r10(2000, 6, 60).generate().unwrap();
        // Blobs have σ = 1 (point-to-point distances ≈ √20 ≈ 4.5 in
        // R¹⁰) and ≥8σ mean separation. t2 = 7 swallows most of a blob;
        // a handful of tail points per blob found straggler canopies —
        // canopies over-estimate k by design (they are an upper bound).
        let r = canopy_clustering(&d.points, 9.0, 7.0, 1);
        assert!((6..=20).contains(&r.k()), "{} canopies for 6 blobs", r.k());
        // Every true center is anchored by some canopy center.
        for t in d.true_centers.rows() {
            let best = r
                .canopies
                .iter()
                .map(|c| gmr_linalg::euclidean(d.points.row(c.center), t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 7.0, "a blob has no canopy anchor ({best})");
        }
        // Every point belongs to at least one canopy.
        let mut covered = vec![false; d.points.len()];
        for c in &r.canopies {
            for &m in &c.members {
                covered[m] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "uncovered points");
    }

    #[test]
    fn canopy_centers_seed_kmeans_well() {
        let d = GaussianMixture::paper_r10(3000, 5, 61).generate().unwrap();
        let r = canopy_clustering(&d.points, 9.0, 7.0, 2);
        assert!(r.k() >= 5);
        let seeds = r.centers(&d.points);
        let fit = crate::serial::kmeans_from(
            &d.points,
            seeds,
            &crate::config::KMeansConfig::new(r.k()).with_iterations(10),
        );
        // Canopy seeding guarantees every blob is covered (the extra
        // straggler seeds merely split blobs, never starve one). A
        // split blob's sub-centers sit up to ~1σ off its true mean.
        for t in d.true_centers.rows() {
            let best = fit
                .centers
                .rows()
                .map(|c| gmr_linalg::euclidean(c, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "missed a center by {best}");
        }
    }

    #[test]
    fn tight_thresholds_make_many_canopies() {
        let d = GaussianMixture::figure_r2(500, 62).generate().unwrap();
        let coarse = canopy_clustering(&d.points, 20.0, 10.0, 3);
        let fine = canopy_clustering(&d.points, 2.0, 1.0, 3);
        assert!(fine.k() > coarse.k());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = GaussianMixture::figure_r2(400, 63).generate().unwrap();
        let a = canopy_clustering(&d.points, 10.0, 5.0, 7);
        let b = canopy_clustering(&d.points, 10.0, 5.0, 7);
        assert_eq!(a.canopies.len(), b.canopies.len());
        for (x, y) in a.canopies.iter().zip(&b.canopies) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn single_point_is_one_canopy() {
        let data = Dataset::from_flat(2, vec![1.0, 2.0]);
        let r = canopy_clustering(&data, 2.0, 1.0, 0);
        assert_eq!(r.k(), 1);
        assert_eq!(r.canopies[0].members, vec![0]);
    }

    #[test]
    #[should_panic(expected = "t1 > t2")]
    fn inverted_thresholds_panic() {
        let data = Dataset::from_flat(1, vec![0.0, 1.0]);
        canopy_clustering(&data, 1.0, 2.0, 0);
    }
}
