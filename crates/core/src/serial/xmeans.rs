//! X-means (Pelleg & Moore, 2000): the BIC-driven alternative to
//! G-means that the paper's related work compares against.
//!
//! X-means alternates "improve-params" (plain k-means) with
//! "improve-structure": every cluster is tentatively split in two and
//! the split is kept when the Bayesian Information Criterion of the
//! two-cluster model on that cluster's points beats the one-cluster
//! model. G-means' own evaluation (Hamerly & Elkan) found that X-means
//! tends to overfit non-Gaussian data; having both lets the example
//! programs and the ablation benches compare the two split criteria on
//! identical substrates.

use gmr_linalg::{nearest_center, squared_euclidean, Dataset, Point};
use gmr_stats::{bic_spherical, ClusterModelStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::KMeansConfig;
use crate::serial::kmeans::kmeans_from;

/// Configuration of X-means.
#[derive(Clone, Copy, Debug)]
pub struct XMeansConfig {
    /// Initial number of clusters.
    pub k_min: usize,
    /// Upper bound on clusters.
    pub k_max: usize,
    /// Lloyd iterations per improve-params phase.
    pub kmeans_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XMeansConfig {
    fn default() -> Self {
        Self {
            k_min: 1,
            k_max: 64,
            kmeans_iterations: 10,
            seed: 0xdecafbad,
        }
    }
}

/// Result of an X-means run.
#[derive(Clone, Debug)]
pub struct XMeansResult {
    /// Discovered centers.
    pub centers: Dataset,
    /// Structure-improvement rounds performed.
    pub rounds: usize,
}

impl XMeansResult {
    /// Number of discovered clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }
}

/// Runs X-means on `data`.
///
/// # Panics
/// Panics if `data` is empty or `k_min == 0` or `k_min > k_max`.
pub fn xmeans(data: &Dataset, config: &XMeansConfig) -> XMeansResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(
        config.k_min > 0 && config.k_min <= config.k_max,
        "bad k range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dim = data.dim();

    let mut centers = crate::serial::init::initial_centers(
        data,
        config.k_min,
        crate::serial::init::InitStrategy::KMeansPlusPlus,
        config.seed,
    );
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Improve-params.
        centers = kmeans_from(
            data,
            centers,
            &KMeansConfig::new(0).with_iterations(config.kmeans_iterations),
        )
        .centers;

        // Partition points by cluster.
        let mut subsets: Vec<Dataset> = (0..centers.len()).map(|_| Dataset::new(dim)).collect();
        let center_rows: Vec<&[f64]> = centers.rows().collect();
        for row in data.rows() {
            let (idx, _) = nearest_center(row, center_rows.iter().copied()).expect("centers");
            subsets[idx].push(row);
        }

        // Improve-structure: per-cluster BIC split test.
        let mut next = Dataset::new(dim);
        let mut split_any = false;
        for (i, subset) in subsets.iter().enumerate() {
            let parent = centers.point(i);
            let remaining = config
                .k_max
                .saturating_sub(next.len() + (subsets.len() - i - 1));
            if subset.len() < 4 || remaining < 2 {
                next.push(parent.as_slice());
                continue;
            }
            match try_split(subset, &parent, config, &mut rng) {
                Some((c1, c2)) => {
                    split_any = true;
                    next.push(c1.as_slice());
                    next.push(c2.as_slice());
                }
                None => next.push(parent.as_slice()),
            }
        }
        centers = next;
        if !split_any || centers.len() >= config.k_max || rounds >= 64 {
            break;
        }
    }
    XMeansResult { centers, rounds }
}

/// BIC-compares the one-cluster model of `subset` against a locally
/// fitted two-cluster model; returns the children when splitting wins.
fn try_split(
    subset: &Dataset,
    parent: &Point,
    config: &XMeansConfig,
    rng: &mut StdRng,
) -> Option<(Point, Point)> {
    let n = subset.len();
    let dim = subset.dim();

    // Parent model score.
    let parent_wcss: f64 = subset
        .rows()
        .map(|p| squared_euclidean(p, parent.as_slice()))
        .sum();
    let bic1 = bic_spherical(&ClusterModelStats {
        cluster_sizes: vec![n as u64],
        wcss: parent_wcss,
        dim,
    })?;

    // Child model: 2-means from two random points.
    let i = rng.random_range(0..n);
    let mut j = rng.random_range(0..n);
    if subset.row(i) == subset.row(j) {
        j = (i + 1) % n;
    }
    let mut starts = Dataset::with_capacity(dim, 2);
    starts.push(subset.row(i));
    starts.push(subset.row(j));
    let refined = kmeans_from(
        subset,
        starts,
        &KMeansConfig::new(2).with_iterations(config.kmeans_iterations),
    );
    let c1 = refined.centers.point(0);
    let c2 = refined.centers.point(1);

    let mut sizes = [0u64; 2];
    let mut wcss2 = 0.0;
    for row in subset.rows() {
        let (idx, d2) = nearest_center(row, [c1.as_slice(), c2.as_slice()]).expect("two");
        sizes[idx] += 1;
        wcss2 += d2;
    }
    if sizes[0] == 0 || sizes[1] == 0 {
        return None;
    }
    let bic2 = bic_spherical(&ClusterModelStats {
        cluster_sizes: sizes.to_vec(),
        wcss: wcss2,
        dim,
    })?;

    (bic2 > bic1).then_some((c1, c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{ClusterWeights, GaussianMixture};
    use gmr_linalg::euclidean;

    #[test]
    fn single_gaussian_stays_single() {
        let spec = GaussianMixture {
            n_points: 2000,
            dim: 2,
            n_clusters: 1,
            box_min: 0.0,
            box_max: 10.0,
            stddev: 1.0,
            min_separation_sigmas: 0.0,
            seed: 3,
            weights: ClusterWeights::Balanced,
        };
        let d = spec.generate().unwrap();
        let r = xmeans(&d.points, &XMeansConfig::default());
        assert!(r.k() <= 2, "split a single Gaussian into {}", r.k());
    }

    #[test]
    fn finds_separated_clusters() {
        let d = GaussianMixture::paper_r10(4000, 8, 21).generate().unwrap();
        let r = xmeans(&d.points, &XMeansConfig::default());
        assert!(
            (8..=14).contains(&r.k()),
            "found {} clusters for 8 real",
            r.k()
        );
        for t in d.true_centers.rows() {
            let best = r
                .centers
                .rows()
                .map(|c| euclidean(c, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "missed a true center by {best}");
        }
    }

    #[test]
    fn respects_k_max() {
        let d = GaussianMixture::paper_r10(3000, 10, 5).generate().unwrap();
        let cfg = XMeansConfig {
            k_max: 4,
            ..XMeansConfig::default()
        };
        let r = xmeans(&d.points, &cfg);
        assert!(r.k() <= 4, "k_max violated: {}", r.k());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = GaussianMixture::figure_r2(1000, 9).generate().unwrap();
        let a = xmeans(&d.points, &XMeansConfig::default());
        let b = xmeans(&d.points, &XMeansConfig::default());
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    #[should_panic(expected = "bad k range")]
    fn invalid_range_panics() {
        let d = Dataset::from_flat(1, vec![1.0, 2.0]);
        xmeans(
            &d,
            &XMeansConfig {
                k_min: 5,
                k_max: 2,
                ..XMeansConfig::default()
            },
        );
    }
}
