//! Single-machine reference implementations.
//!
//! These are the algorithms as the literature describes them, without
//! the MapReduce reformulation: Lloyd's k-means with pluggable
//! initialization, the original recursive G-means, X-means, and the
//! loop-over-k multi-k-means baseline. The MapReduce jobs in
//! [`crate::mr`] are validated against these in the integration tests.

pub mod canopy;
pub mod gmeans;
pub mod init;
pub mod kmeans;
pub mod multik;
pub mod xmeans;

pub use canopy::{canopy_clustering, Canopy, CanopyResult};
pub use gmeans::{GMeans, GMeansResult};
pub use init::{initial_centers, InitStrategy};
pub use kmeans::{kmeans, kmeans_from, lloyd_iteration, KMeansResult};
pub use multik::{multi_kmeans, KModel};
pub use xmeans::{xmeans, XMeansConfig, XMeansResult};
