//! Serial G-means (Hamerly & Elkan, "Learning the k in k-means", 2003).
//!
//! The sequential algorithm the paper parallelizes (§2): starting from
//! one cluster, repeatedly
//!
//! 1. pick two candidate children `c1`, `c2` for a cluster,
//! 2. refine them with 2-means on the cluster's points,
//! 3. project the points on `v = c1 − c2` and Anderson–Darling-test the
//!    normalized projections,
//! 4. keep the original center if the projections look Gaussian,
//!    otherwise replace it by `c1`, `c2` and recurse into both halves.
//!
//! Unlike the MapReduce version, this one works cluster-locally: each
//! cluster's points are materialized and recursed into, which is exactly
//! the membership binding §3 explains is too I/O-expensive on MapReduce.

use gmr_linalg::{nearest_center, Dataset, Point, SegmentProjector};
use gmr_stats::AdError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{GMeansConfig, KMeansConfig};
use crate::serial::kmeans::kmeans_from;

/// Result of a serial G-means run.
#[derive(Clone, Debug)]
pub struct GMeansResult {
    /// Discovered centers.
    pub centers: Dataset,
    /// Number of Anderson–Darling tests performed.
    pub ad_tests: usize,
    /// Number of clusters that were split.
    pub splits: usize,
}

impl GMeansResult {
    /// The discovered number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }
}

/// Serial G-means runner.
#[derive(Clone, Debug)]
pub struct GMeans {
    config: GMeansConfig,
}

impl GMeans {
    /// Creates a runner with the given configuration.
    pub fn new(config: GMeansConfig) -> Self {
        Self { config }
    }

    /// Clusters `data`, learning the number of clusters.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn fit(&self, data: &Dataset) -> GMeansResult {
        assert!(!data.is_empty(), "cannot cluster an empty dataset");
        let ad = self.config.ad_test();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Work queue of clusters, each a materialized subset plus its
        // center. Start with the whole dataset around its mean.
        let mut queue: Vec<(Dataset, Point)> = vec![(data.clone(), mean_point(data))];
        let mut accepted = Dataset::new(data.dim());
        let mut ad_tests = 0usize;
        let mut splits = 0usize;
        // Depth guard: every split halves at best, so 2·max_iterations
        // splits along one path means something is wrong.
        let mut processed = 0usize;
        let max_processed = data.len() * 4 + 64;

        while let Some((subset, center)) = queue.pop() {
            processed += 1;
            if processed > max_processed {
                // Pathological non-convergence: accept what remains.
                accepted.push(center.as_slice());
                for (_, c) in queue.drain(..) {
                    accepted.push(c.as_slice());
                }
                break;
            }
            if subset.len() < self.config.min_test_sample {
                accepted.push(center.as_slice());
                continue;
            }

            // 1. Two candidate children: distinct random points.
            let (c1, c2) = pick_two_points(&subset, &mut rng);
            // 2. Refine with 2-means on this cluster's points.
            let mut starts = Dataset::with_capacity(subset.dim(), 2);
            starts.push(c1.as_slice());
            starts.push(c2.as_slice());
            let refined = kmeans_from(&subset, starts, &KMeansConfig::new(2).with_iterations(10));
            let r1 = refined.centers.point(0);
            let r2 = refined.centers.point(1);

            // 3. Project & test.
            let projector = SegmentProjector::new(r1.as_slice(), r2.as_slice());
            if projector.is_degenerate() {
                // Children collapsed: no split direction — keep center.
                accepted.push(center.as_slice());
                continue;
            }
            let projections: Vec<f64> = subset.rows().map(|p| projector.project(p)).collect();
            ad_tests += 1;
            let is_normal = match ad.test(&projections) {
                Ok(outcome) => outcome.is_normal(self.config.alpha),
                // Constant projections = no structure along v.
                Err(AdError::ZeroVariance) => true,
                Err(AdError::SampleTooSmall { .. }) => true,
                Err(AdError::NonFinite) => true,
            };

            if is_normal {
                accepted.push(center.as_slice());
            } else {
                // 4. Split: partition the subset between r1 and r2.
                splits += 1;
                let (s1, s2) = partition(&subset, r1.as_slice(), r2.as_slice());
                // A split that leaves one side empty is no split at all.
                if s1.is_empty() || s2.is_empty() {
                    accepted.push(center.as_slice());
                    continue;
                }
                queue.push((s1, r1));
                queue.push((s2, r2));
            }
        }

        GMeansResult {
            centers: accepted,
            ad_tests,
            splits,
        }
    }

    /// Like [`GMeans::fit`], followed by a final global Lloyd refinement
    /// of the discovered centers over the whole dataset.
    pub fn fit_refined(&self, data: &Dataset, refine_iterations: usize) -> GMeansResult {
        let mut result = self.fit(data);
        if !result.centers.is_empty() && refine_iterations > 0 {
            let refined = kmeans_from(
                data,
                result.centers.clone(),
                &KMeansConfig::new(result.centers.len()).with_iterations(refine_iterations),
            );
            result.centers = refined.centers;
        }
        result
    }
}

fn mean_point(data: &Dataset) -> Point {
    let mut acc = gmr_linalg::CentroidAccumulator::new(data.dim());
    for row in data.rows() {
        acc.push(row);
    }
    acc.mean().expect("nonempty dataset")
}

fn pick_two_points(data: &Dataset, rng: &mut StdRng) -> (Point, Point) {
    let n = data.len();
    let i = rng.random_range(0..n);
    // Find a point distinct from i's coordinates if one exists.
    for _ in 0..32 {
        let j = rng.random_range(0..n);
        if data.row(j) != data.row(i) {
            return (data.point(i), data.point(j));
        }
    }
    (data.point(i), data.point((i + 1) % n))
}

fn partition(data: &Dataset, c1: &[f64], c2: &[f64]) -> (Dataset, Dataset) {
    let mut s1 = Dataset::new(data.dim());
    let mut s2 = Dataset::new(data.dim());
    for row in data.rows() {
        let (idx, _) = nearest_center(row, [c1, c2]).expect("two centers");
        if idx == 0 {
            s1.push(row);
        } else {
            s2.push(row);
        }
    }
    (s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::{ClusterWeights, GaussianMixture};
    use gmr_linalg::euclidean;

    #[test]
    fn single_gaussian_is_one_cluster() {
        let spec = GaussianMixture {
            n_points: 2000,
            dim: 2,
            n_clusters: 1,
            box_min: 0.0,
            box_max: 100.0,
            stddev: 2.0,
            min_separation_sigmas: 0.0,
            seed: 4,
            weights: ClusterWeights::Balanced,
        };
        let d = spec.generate().unwrap();
        let r = GMeans::new(GMeansConfig::default()).fit(&d.points);
        assert_eq!(r.k(), 1, "one Gaussian must stay one cluster");
    }

    #[test]
    fn finds_ten_r2_clusters_approximately() {
        let d = GaussianMixture::figure_r2(4000, 1).generate().unwrap();
        let r = GMeans::new(GMeansConfig::default()).fit(&d.points);
        // The paper's own example finds 14 for 10 real clusters; accept
        // the same overestimate band.
        assert!(
            (10..=16).contains(&r.k()),
            "found {} clusters for 10 real",
            r.k()
        );
        // Every true center has a discovered center within 2σ.
        for t in d.true_centers.rows() {
            let best = r
                .centers
                .rows()
                .map(|c| euclidean(c, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 4.0, "missed a true center by {best}");
        }
    }

    #[test]
    fn r10_separated_clusters_are_found() {
        let d = GaussianMixture::paper_r10(5000, 8, 2).generate().unwrap();
        let r = GMeans::new(GMeansConfig::default()).fit(&d.points);
        assert!(
            (8..=13).contains(&r.k()),
            "found {} clusters for 8 real",
            r.k()
        );
        for t in d.true_centers.rows() {
            let best = r
                .centers
                .rows()
                .map(|c| euclidean(c, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "missed a true center by {best}");
        }
    }

    #[test]
    fn tiny_dataset_is_single_cluster() {
        let data = Dataset::from_flat(1, (0..10).map(|i| i as f64).collect());
        let r = GMeans::new(GMeansConfig::default()).fit(&data);
        assert_eq!(r.k(), 1);
        assert_eq!(r.ad_tests, 0, "too small to test");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = GaussianMixture::figure_r2(1500, 6).generate().unwrap();
        let cfg = GMeansConfig::default().with_seed(11);
        let a = GMeans::new(cfg).fit(&d.points);
        let b = GMeans::new(cfg).fit(&d.points);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.ad_tests, b.ad_tests);
    }

    #[test]
    fn refined_fit_does_not_change_k() {
        let d = GaussianMixture::figure_r2(2000, 8).generate().unwrap();
        let g = GMeans::new(GMeansConfig::default());
        let plain = g.fit(&d.points);
        let refined = g.fit_refined(&d.points, 5);
        assert_eq!(plain.k(), refined.k());
        // Refinement must not worsen WCSS.
        let w_plain = crate::eval::wcss(&d.points, &plain.centers);
        let w_refined = crate::eval::wcss(&d.points, &refined.centers);
        assert!(w_refined <= w_plain + 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        GMeans::new(GMeansConfig::default()).fit(&Dataset::new(2));
    }
}
