//! Serial Lloyd's algorithm ("the k-means algorithm", §1).
//!
//! This is the single-machine reference implementation the MapReduce
//! jobs are tested against: assignment and update steps are algebraically
//! identical, so on the same data with the same initial centers, one MR
//! k-means job must produce (up to floating-point reassociation) the
//! same centers as one [`lloyd_iteration`].

use gmr_linalg::{nearest_center_flat, CentroidAccumulator, Dataset};
use rayon::prelude::*;

use crate::config::KMeansConfig;
use crate::eval::assign;
use crate::serial::init::{initial_centers, InitStrategy};

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final centers. May contain fewer than `k` rows if clusters
    /// emptied and were dropped.
    pub centers: Dataset,
    /// Lloyd iterations actually performed.
    pub iterations: usize,
    /// Final within-cluster sum of squares.
    pub wcss: f64,
}

/// One Lloyd iteration: assigns every point to its nearest center and
/// returns the new means together with cluster sizes.
///
/// Empty clusters keep their previous center (the standard convention,
/// also what the MapReduce reducer does when no pair arrives for an id).
pub fn lloyd_iteration(data: &Dataset, centers: &Dataset) -> (Dataset, Vec<u64>) {
    assert!(!centers.is_empty(), "need at least one center");
    let dim = data.dim();
    let flat = centers.flat();
    let k = centers.len();

    // Parallel partial accumulation, then merge — the same fold the MR
    // combiner/reducer pipeline performs.
    let rows: Vec<&[f64]> = data.rows().collect();
    let accs = rows
        .par_chunks(4096)
        .map(|chunk| {
            let mut acc: Vec<CentroidAccumulator> =
                (0..k).map(|_| CentroidAccumulator::new(dim)).collect();
            for row in chunk {
                let (idx, _) = nearest_center_flat(row, flat, dim).expect("nonempty");
                acc[idx].push(row);
            }
            acc
        })
        .reduce(
            || (0..k).map(|_| CentroidAccumulator::new(dim)).collect(),
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    x.merge(y);
                }
                a
            },
        );

    let mut new_centers = Dataset::with_capacity(dim, k);
    let mut sizes = Vec::with_capacity(k);
    for (i, acc) in accs.iter().enumerate() {
        match acc.mean() {
            Some(mean) => new_centers.push(mean.as_slice()),
            None => new_centers.push(centers.row(i)), // empty cluster
        }
        sizes.push(acc.count());
    }
    (new_centers, sizes)
}

/// Runs k-means with the given initialization strategy.
pub fn kmeans(data: &Dataset, config: &KMeansConfig, strategy: InitStrategy) -> KMeansResult {
    let centers = initial_centers(data, config.k, strategy, config.seed);
    kmeans_from(data, centers, config)
}

/// Runs Lloyd iterations from explicit starting centers.
pub fn kmeans_from(data: &Dataset, mut centers: Dataset, config: &KMeansConfig) -> KMeansResult {
    let mut iterations = 0;
    let mut last_wcss = f64::INFINITY;
    for _ in 0..config.max_iterations {
        let (next, _sizes) = lloyd_iteration(data, &centers);
        iterations += 1;
        centers = next;
        if config.tolerance > 0.0 {
            let w = assign(data, &centers).wcss;
            if last_wcss.is_finite() && (last_wcss - w) <= config.tolerance * last_wcss {
                last_wcss = w;
                break;
            }
            last_wcss = w;
        }
    }
    let wcss = if last_wcss.is_finite() {
        last_wcss
    } else {
        assign(data, &centers).wcss
    };
    KMeansResult {
        centers,
        iterations,
        wcss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::GaussianMixture;
    use gmr_linalg::euclidean;

    #[test]
    fn lloyd_moves_centers_to_means() {
        // Two clusters on a line; centers start slightly off.
        let data = Dataset::from_flat(1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let centers = Dataset::from_flat(1, vec![0.5, 11.5]);
        let (next, sizes) = lloyd_iteration(&data, &centers);
        assert_eq!(sizes, vec![3, 3]);
        assert!((next.row(0)[0] - 1.0).abs() < 1e-12);
        assert!((next.row(1)[0] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_center() {
        let data = Dataset::from_flat(1, vec![0.0, 1.0]);
        let centers = Dataset::from_flat(1, vec![0.5, 100.0]);
        let (next, sizes) = lloyd_iteration(&data, &centers);
        assert_eq!(sizes, vec![2, 0]);
        assert_eq!(next.row(1)[0], 100.0);
    }

    #[test]
    fn wcss_is_monotone_over_iterations() {
        let d = GaussianMixture::paper_r10(2000, 8, 3).generate().unwrap();
        let init = initial_centers(&d.points, 8, InitStrategy::Random, 1);
        let mut centers = init;
        let mut last = f64::INFINITY;
        for _ in 0..6 {
            let w = assign(&d.points, &centers).wcss;
            assert!(w <= last + 1e-6, "wcss increased: {w} > {last}");
            last = w;
            centers = lloyd_iteration(&d.points, &centers).0;
        }
    }

    #[test]
    fn recovers_well_separated_clusters_with_kmeanspp() {
        let d = GaussianMixture::paper_r10(3000, 6, 17).generate().unwrap();
        let r = kmeans(
            &d.points,
            &KMeansConfig::new(6).with_iterations(15).with_seed(5),
            InitStrategy::KMeansPlusPlus,
        );
        // Every true center must have a discovered center within 1σ.
        for t in d.true_centers.rows() {
            let best = r
                .centers
                .rows()
                .map(|c| euclidean(c, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "missed a true center by {best}");
        }
    }

    #[test]
    fn early_stopping_respects_tolerance() {
        let d = GaussianMixture::paper_r10(1000, 4, 2).generate().unwrap();
        let mut cfg = KMeansConfig::new(4).with_iterations(50).with_seed(9);
        cfg.tolerance = 0.01;
        let r = kmeans(&d.points, &cfg, InitStrategy::KMeansPlusPlus);
        assert!(
            r.iterations < 50,
            "tolerance should stop early, took {}",
            r.iterations
        );
    }

    #[test]
    fn fixed_iteration_budget_is_respected() {
        let d = GaussianMixture::paper_r10(500, 4, 2).generate().unwrap();
        let r = kmeans(
            &d.points,
            &KMeansConfig::new(4).with_iterations(3),
            InitStrategy::Random,
        );
        assert_eq!(r.iterations, 3);
    }
}
