//! Serial multi-k-means: fit models for every k in a range.
//!
//! This is the single-machine counterpart of the paper's Algorithm 6:
//! "the classical way to find k is to … let [k-means] run for different
//! values of k, and use one of the criteria … to find the best value of
//! k". The MapReduce version updates all k simultaneously per job; the
//! serial version simply loops, producing the same family of models that
//! [`crate::selection`] criteria choose from.

use gmr_linalg::Dataset;

use crate::config::KMeansConfig;
use crate::serial::init::{initial_centers, InitStrategy};
use crate::serial::kmeans::kmeans_from;

/// One fitted model of the multi-k family.
#[derive(Clone, Debug)]
pub struct KModel {
    /// The k this model was fitted with.
    pub k: usize,
    /// Fitted centers.
    pub centers: Dataset,
    /// Final within-cluster sum of squares.
    pub wcss: f64,
}

/// Fits k-means for every `k` in `k_min..=k_max` with the given step.
///
/// Each model is initialized independently (random points, seeded per
/// k) and refined for `iterations` Lloyd rounds — the paper's Table 3
/// lets multi-k-means run 10 iterations, "enough to find a stable
/// solution".
///
/// # Panics
/// Panics if the range is empty, `k_step == 0` or `data` is empty.
pub fn multi_kmeans(
    data: &Dataset,
    k_min: usize,
    k_max: usize,
    k_step: usize,
    iterations: usize,
    seed: u64,
) -> Vec<KModel> {
    assert!(k_min > 0 && k_min <= k_max, "bad k range");
    assert!(k_step > 0, "k_step must be positive");
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    let mut models = Vec::new();
    let mut k = k_min;
    while k <= k_max {
        let init = initial_centers(data, k, InitStrategy::Random, seed ^ (k as u64) << 17);
        let r = kmeans_from(
            data,
            init,
            &KMeansConfig::new(k).with_iterations(iterations),
        );
        models.push(KModel {
            k,
            centers: r.centers,
            wcss: r.wcss,
        });
        k += k_step;
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmr_datagen::GaussianMixture;

    #[test]
    fn produces_one_model_per_k() {
        let d = GaussianMixture::paper_r10(500, 4, 8).generate().unwrap();
        let models = multi_kmeans(&d.points, 1, 8, 1, 5, 0);
        assert_eq!(models.len(), 8);
        for (i, m) in models.iter().enumerate() {
            assert_eq!(m.k, i + 1);
            assert_eq!(m.centers.len(), m.k);
        }
    }

    #[test]
    fn step_is_respected() {
        let d = GaussianMixture::paper_r10(300, 4, 8).generate().unwrap();
        let models = multi_kmeans(&d.points, 2, 10, 3, 3, 0);
        let ks: Vec<usize> = models.iter().map(|m| m.k).collect();
        assert_eq!(ks, vec![2, 5, 8]);
    }

    #[test]
    fn wcss_trends_downward_in_k() {
        let d = GaussianMixture::paper_r10(2000, 6, 13).generate().unwrap();
        let models = multi_kmeans(&d.points, 1, 10, 1, 8, 1);
        // Independent restarts are not strictly monotone, but the first
        // and last models must differ hugely on well-separated data.
        assert!(models[0].wcss > 10.0 * models.last().unwrap().wcss);
    }

    #[test]
    #[should_panic(expected = "bad k range")]
    fn empty_range_panics() {
        let d = Dataset::from_flat(1, vec![1.0]);
        multi_kmeans(&d, 3, 2, 1, 1, 0);
    }
}
