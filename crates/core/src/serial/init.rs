//! Center initialization strategies.
//!
//! The paper's own implementation "picks initial centers at random, but
//! other distributed or more efficient algorithms can be found in the
//! literature and can perfectly be used instead" (§3). Both strategies
//! it cites are provided: uniform random picks and k-means++ (Arthur &
//! Vassilvitskii 2007), which §2 describes as reducing "the probability
//! to fall into a local minimum".

use gmr_linalg::{squared_euclidean, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How initial centers are chosen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitStrategy {
    /// `k` distinct points drawn uniformly at random (the paper's
    /// choice).
    #[default]
    Random,
    /// k-means++: each next center is drawn with probability
    /// proportional to its squared distance from the nearest already
    /// chosen center.
    KMeansPlusPlus,
}

/// Picks `k` initial centers from `data` using `strategy`.
///
/// # Panics
/// Panics if `data` is empty or `k == 0`; if `k > data.len()`, some
/// centers will coincide (duplicates are tolerated, matching the
/// behaviour of sampling from a tiny dataset).
pub fn initial_centers(data: &Dataset, k: usize, strategy: InitStrategy, seed: u64) -> Dataset {
    assert!(k > 0, "k must be positive");
    assert!(!data.is_empty(), "cannot initialize from an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        InitStrategy::Random => random_centers(data, k, &mut rng),
        InitStrategy::KMeansPlusPlus => kmeanspp_centers(data, k, &mut rng),
    }
}

fn random_centers(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let n = data.len();
    let mut centers = Dataset::with_capacity(data.dim(), k);
    if k >= n {
        // Take everything, then repeat random rows.
        for i in 0..n {
            centers.push(data.row(i));
        }
        for _ in n..k {
            centers.push(data.row(rng.random_range(0..n)));
        }
        return centers;
    }
    // Distinct indices via partial Fisher–Yates over an index vec when k
    // is a large fraction of n, rejection sampling otherwise.
    if k * 4 >= n {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
            centers.push(data.row(idx[i]));
        }
    } else {
        let mut chosen = std::collections::HashSet::with_capacity(k);
        while chosen.len() < k {
            let i = rng.random_range(0..n);
            if chosen.insert(i) {
                centers.push(data.row(i));
            }
        }
    }
    centers
}

fn kmeanspp_centers(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let n = data.len();
    let mut centers = Dataset::with_capacity(data.dim(), k);
    centers.push(data.row(rng.random_range(0..n)));
    // dist2[i] = squared distance of point i to its nearest chosen center.
    let mut dist2: Vec<f64> = data
        .rows()
        .map(|p| squared_euclidean(p, centers.row(0)))
        .collect();
    while centers.len() < k {
        let total: f64 = dist2.iter().sum();
        let pick = if total <= 0.0 {
            // All remaining mass is zero (k > distinct points): any index.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centers.push(data.row(pick));
        let new_center: Vec<f64> = data.row(pick).to_vec();
        for (i, d) in dist2.iter_mut().enumerate() {
            let nd = squared_euclidean(data.row(i), &new_center);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset(n: usize) -> Dataset {
        Dataset::from_flat(1, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn random_centers_are_data_points_and_distinct() {
        let data = line_dataset(100);
        let c = initial_centers(&data, 10, InitStrategy::Random, 1);
        assert_eq!(c.len(), 10);
        let mut vals: Vec<f64> = c.rows().map(|r| r[0]).collect();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 10, "random centers must be distinct points");
        for v in vals {
            assert!(v.fract() == 0.0 && (0.0..100.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = line_dataset(50);
        for strategy in [InitStrategy::Random, InitStrategy::KMeansPlusPlus] {
            let a = initial_centers(&data, 5, strategy, 7);
            let b = initial_centers(&data, 5, strategy, 7);
            assert_eq!(a, b);
            let c = initial_centers(&data, 5, strategy, 8);
            assert_ne!(a, c, "different seeds should differ ({strategy:?})");
        }
    }

    #[test]
    fn k_equal_n_takes_all_points() {
        let data = line_dataset(5);
        let c = initial_centers(&data, 5, InitStrategy::Random, 3);
        let mut vals: Vec<f64> = c.rows().map(|r| r[0]).collect();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn k_bigger_than_n_duplicates() {
        let data = line_dataset(3);
        let c = initial_centers(&data, 6, InitStrategy::Random, 3);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn kmeanspp_spreads_centers() {
        // Two tight blobs far apart: k-means++ with k=2 must take one
        // center from each blob, for any seed.
        let mut data = Dataset::new(1);
        for i in 0..50 {
            data.push(&[i as f64 * 0.01]);
        }
        for i in 0..50 {
            data.push(&[1000.0 + i as f64 * 0.01]);
        }
        for seed in 0..20 {
            let c = initial_centers(&data, 2, InitStrategy::KMeansPlusPlus, seed);
            let a = c.row(0)[0];
            let b = c.row(1)[0];
            assert!(
                (a < 500.0) != (b < 500.0),
                "seed {seed}: both centers in one blob ({a}, {b})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        initial_centers(&line_dataset(10), 0, InitStrategy::Random, 0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_data_panics() {
        initial_centers(&Dataset::new(2), 3, InitStrategy::Random, 0);
    }
}
