//! Clustering evaluation: assignments, WCSS and the paper's quality
//! metric.
//!
//! Table 3 compares G-means and multi-k-means by "the average distance
//! between points and their centers" (the square root companion of the
//! within-cluster sum of squares the k-means objective minimizes); these
//! helpers compute both, plus the per-cluster assignment and size
//! breakdowns the other experiments need.

use gmr_linalg::{nearest_center_flat, Dataset};
use rayon::prelude::*;

/// Result of assigning every point to its nearest center.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Index (into the center set) each point is assigned to.
    pub labels: Vec<u32>,
    /// Within-cluster sum of squares: `Σᵢ ‖xᵢ − c_{labels[i]}‖²`.
    pub wcss: f64,
    /// Sum of plain Euclidean distances to assigned centers.
    pub total_distance: f64,
    /// Points per center.
    pub cluster_sizes: Vec<u64>,
}

impl Assignment {
    /// Number of points assigned.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no point was assigned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The paper's Table 3 metric: mean distance of a point to its
    /// assigned center.
    pub fn average_distance(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_distance / self.labels.len() as f64
        }
    }

    /// Number of centers that received at least one point.
    pub fn occupied_clusters(&self) -> usize {
        self.cluster_sizes.iter().filter(|&&s| s > 0).count()
    }
}

/// Assigns every point of `data` to its nearest center in `centers`.
///
/// Runs in parallel over points with rayon (the serial baselines use
/// this for Table 3 over tens of thousands of points × hundreds of
/// centers).
///
/// # Panics
/// Panics if `centers` is empty or dimensions differ.
pub fn assign(data: &Dataset, centers: &Dataset) -> Assignment {
    assert!(!centers.is_empty(), "need at least one center");
    assert_eq!(data.dim(), centers.dim(), "dimension mismatch");
    let dim = data.dim();
    let flat = centers.flat();

    let per_point: Vec<(u32, f64)> = data
        .rows()
        .collect::<Vec<_>>()
        .par_iter()
        .map(|row| {
            let (idx, d2) = nearest_center_flat(row, flat, dim).expect("nonempty centers");
            (idx as u32, d2)
        })
        .collect();

    let mut cluster_sizes = vec![0u64; centers.len()];
    let mut wcss = 0.0;
    let mut total_distance = 0.0;
    let mut labels = Vec::with_capacity(per_point.len());
    for (idx, d2) in per_point {
        cluster_sizes[idx as usize] += 1;
        wcss += d2;
        total_distance += d2.sqrt();
        labels.push(idx);
    }
    Assignment {
        labels,
        wcss,
        total_distance,
        cluster_sizes,
    }
}

/// Within-cluster sum of squares of `centers` on `data`.
pub fn wcss(data: &Dataset, centers: &Dataset) -> f64 {
    assign(data, centers).wcss
}

/// The paper's Table 3 metric in one call.
pub fn average_distance(data: &Dataset, centers: &Dataset) -> f64 {
    assign(data, centers).average_distance()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_dataset() -> Dataset {
        // Four points at the corners of a unit square.
        Dataset::from_flat(2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0])
    }

    #[test]
    fn assignment_to_own_positions_is_exact() {
        let data = square_dataset();
        let a = assign(&data, &data);
        assert_eq!(a.labels, vec![0, 1, 2, 3]);
        assert_eq!(a.wcss, 0.0);
        assert_eq!(a.average_distance(), 0.0);
        assert_eq!(a.cluster_sizes, vec![1, 1, 1, 1]);
        assert_eq!(a.occupied_clusters(), 4);
    }

    #[test]
    fn single_center_collects_everything() {
        let data = square_dataset();
        let center = Dataset::from_flat(2, vec![0.5, 0.5]);
        let a = assign(&data, &center);
        assert_eq!(a.labels, vec![0; 4]);
        assert_eq!(a.cluster_sizes, vec![4]);
        // Each corner is at distance √0.5.
        assert!((a.wcss - 4.0 * 0.5).abs() < 1e-12);
        assert!((a.average_distance() - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn two_centers_split_the_square() {
        let data = square_dataset();
        let centers = Dataset::from_flat(2, vec![0.0, 0.5, 1.0, 0.5]);
        let a = assign(&data, &centers);
        assert_eq!(a.labels, vec![0, 0, 1, 1]);
        assert_eq!(a.cluster_sizes, vec![2, 2]);
        assert!((a.wcss - 4.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn helpers_agree_with_assignment() {
        let data = square_dataset();
        let centers = Dataset::from_flat(2, vec![0.25, 0.25]);
        let a = assign(&data, &centers);
        assert!((wcss(&data, &centers) - a.wcss).abs() < 1e-12);
        assert!((average_distance(&data, &centers) - a.average_distance()).abs() < 1e-12);
    }

    #[test]
    fn more_centers_never_raise_wcss() {
        let data = square_dataset();
        let one = Dataset::from_flat(2, vec![0.5, 0.5]);
        let mut two = one.clone();
        two.push(&[0.0, 0.0]);
        assert!(wcss(&data, &two) <= wcss(&data, &one) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn empty_centers_panic() {
        let data = square_dataset();
        let centers = Dataset::new(2);
        let _ = assign(&data, &centers);
    }
}
