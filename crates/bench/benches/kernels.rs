//! Micro-benchmarks of the numeric kernels on the hot paths of every
//! MapReduce job: distance computation (the unit of the paper's §4 cost
//! model), projection, the Anderson–Darling test, and the text codec
//! points travel through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use gmr_datagen::{format_point, parse_point, ClusterWeights, GaussianMixture};
use gmr_linalg::{
    nearest_center_flat, squared_euclidean, LinearFit, RunningStats, SegmentProjector,
};
use gmr_stats::AndersonDarling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-100.0..100.0)).collect()
}

fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("squared_euclidean");
    for dim in [2usize, 10, 100] {
        let a = rand_vec(dim, 1);
        let b = rand_vec(dim, 2);
        g.throughput(Throughput::Elements(dim as u64));
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| squared_euclidean(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_nearest_center(c: &mut Criterion) {
    let mut g = c.benchmark_group("nearest_center_flat");
    let dim = 10;
    let point = rand_vec(dim, 3);
    for k in [10usize, 100, 1000] {
        let centers = rand_vec(dim * k, 4);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| nearest_center_flat(black_box(&point), black_box(&centers), dim))
        });
    }
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    let c1 = rand_vec(10, 5);
    let c2 = rand_vec(10, 6);
    let projector = SegmentProjector::new(&c1, &c2);
    let point = rand_vec(10, 7);
    c.bench_function("segment_projection_dim10", |b| {
        b.iter(|| projector.project(black_box(&point)))
    });
}

fn bench_anderson_darling(c: &mut Criterion) {
    let mut g = c.benchmark_group("anderson_darling");
    let ad = AndersonDarling::default();
    for n in [100usize, 1_000, 10_000] {
        let sample = GaussianMixture {
            n_points: n,
            dim: 1,
            n_clusters: 1,
            box_min: 0.0,
            box_max: 10.0,
            stddev: 1.0,
            min_separation_sigmas: 0.0,
            seed: 8,
            weights: ClusterWeights::Balanced,
        }
        .generate()
        .unwrap();
        let xs: Vec<f64> = sample.points.rows().map(|r| r[0]).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ad.test(black_box(&xs)).unwrap())
        });
    }
    g.finish();
}

fn bench_running_stats(c: &mut Criterion) {
    let xs = rand_vec(10_000, 9);
    c.bench_function("running_stats_10k", |b| {
        b.iter(|| {
            let mut s = RunningStats::new();
            s.push_all(black_box(&xs));
            s.variance_sample()
        })
    });
}

fn bench_linear_fit(c: &mut Criterion) {
    let pts: Vec<(f64, f64)> = (0..1000)
        .map(|i| (i as f64, 64.0 * i as f64 - 42.0))
        .collect();
    c.bench_function("linear_fit_1k", |b| {
        b.iter(|| LinearFit::fit(black_box(&pts)).unwrap())
    });
}

fn bench_text_codec(c: &mut Criterion) {
    let point = rand_vec(10, 10);
    let line = format_point(&point);
    c.bench_function("format_point_dim10", |b| {
        b.iter(|| format_point(black_box(&point)))
    });
    c.bench_function("parse_point_dim10", |b| {
        b.iter(|| parse_point(black_box(&line)).unwrap())
    });
}

criterion_group!(
    kernels,
    bench_distance,
    bench_nearest_center,
    bench_projection,
    bench_anderson_darling,
    bench_running_stats,
    bench_linear_fit,
    bench_text_codec
);
criterion_main!(kernels);
