//! Benchmarks of the MapReduce engine itself: serialization, shuffle
//! sort/merge, the wave scheduler, and complete jobs — the pieces whose
//! costs §3–§4 of the paper reason about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use gmeans::mr::{CenterSet, KMeansJob, SplitTestSpec, TestClustersJob};
use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_linalg::SegmentProjector;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::cost::makespan;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::job::JobConfig;
use gmr_mapreduce::runtime::JobRunner;
use gmr_mapreduce::shuffle::{encode_segment, MergeIter, Segment};
use gmr_mapreduce::writable::{from_bytes, to_bytes};
use gmr_stats::AndersonDarling;

fn bench_writable(c: &mut Criterion) {
    let pair: (i64, (Vec<f64>, u64)) = (42, ((0..10).map(|i| i as f64 * 1.5).collect(), 1));
    let bytes = to_bytes(&pair);
    c.bench_function("writable_encode_kmeans_pair", |b| {
        b.iter(|| to_bytes(black_box(&pair)))
    });
    c.bench_function("writable_decode_kmeans_pair", |b| {
        b.iter(|| from_bytes::<(i64, (Vec<f64>, u64))>(black_box(&bytes)).unwrap())
    });
}

fn bench_shuffle_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle_merge");
    for segments in [2usize, 8, 32] {
        let per_segment = 10_000 / segments;
        let segs: Vec<Segment> = (0..segments)
            .map(|s| {
                let pairs: Vec<(i64, f64)> = (0..per_segment)
                    .map(|i| ((i * segments + s) as i64, i as f64))
                    .collect();
                encode_segment(&pairs)
            })
            .collect();
        g.throughput(Throughput::Elements((per_segment * segments) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &segments,
            |bench, _| {
                bench.iter(|| {
                    let merged: Vec<(i64, f64)> = MergeIter::new(black_box(segs.clone()))
                        .unwrap()
                        .collect::<gmr_mapreduce::Result<_>>()
                        .unwrap();
                    merged.len()
                })
            },
        );
    }
    g.finish();
}

fn bench_makespan(c: &mut Criterion) {
    let durations: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 17) as f64).collect();
    c.bench_function("makespan_1000_tasks_32_slots", |b| {
        b.iter(|| makespan(black_box(&durations), 32))
    });
}

fn staged(n: usize, k: usize) -> (JobRunner, CenterSet) {
    let spec = GaussianMixture::paper_r10(n, k, 77);
    let dfs = Arc::new(Dfs::new(128 * 1024));
    let truth = spec.generate_to_dfs(&dfs, "points.txt").unwrap();
    let mut centers = CenterSet::new(10);
    for (i, row) in truth.rows().enumerate() {
        centers.push(i as i64, row);
    }
    let runner = JobRunner::new(dfs, ClusterConfig::default()).unwrap();
    (runner, centers)
}

fn bench_kmeans_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans_job_10k_points");
    g.sample_size(10);
    for k in [8usize, 64] {
        let (runner, centers) = staged(10_000, k);
        let centers = Arc::new(centers);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let job = KMeansJob::new(Arc::clone(&centers));
                runner
                    .run(&job, "points.txt", &JobConfig::with_reducers(8))
                    .unwrap()
                    .output
                    .len()
            })
        });
    }
    g.finish();
}

fn bench_test_clusters_job(c: &mut Criterion) {
    let (runner, centers) = staged(10_000, 8);
    let projectors: Vec<Option<SegmentProjector>> = (0..centers.len())
        .map(|i| {
            let base = centers.coords(i);
            let mut a = base.to_vec();
            let mut b = base.to_vec();
            a[0] -= 1.0;
            b[0] += 1.0;
            Some(SegmentProjector::new(&a, &b))
        })
        .collect();
    let spec = SplitTestSpec::new(
        Arc::new(centers),
        Arc::new(projectors),
        AndersonDarling::default(),
    );
    let mut g = c.benchmark_group("test_clusters_job_10k_points");
    g.sample_size(10);
    g.bench_function("reducer_side", |b| {
        b.iter(|| {
            runner
                .run(
                    &TestClustersJob::new(spec.clone()),
                    "points.txt",
                    &JobConfig::with_reducers(8),
                )
                .unwrap()
                .output
                .len()
        })
    });
    g.finish();
}

fn bench_full_gmeans(c: &mut Criterion) {
    let spec = GaussianMixture::figure_r2(5_000, 12);
    let dfs = Arc::new(Dfs::new(64 * 1024));
    spec.generate_to_dfs(&dfs, "points.txt").unwrap();
    let mut g = c.benchmark_group("mr_gmeans_end_to_end_5k_r2");
    g.sample_size(10);
    g.bench_function("default", |b| {
        b.iter(|| {
            let runner = JobRunner::new(Arc::clone(&dfs), ClusterConfig::default()).unwrap();
            MRGMeans::new(runner, GMeansConfig::default())
                .run("points.txt")
                .unwrap()
                .k()
        })
    });
    g.finish();
}

criterion_group!(
    engine,
    bench_writable,
    bench_shuffle_merge,
    bench_makespan,
    bench_kmeans_job,
    bench_test_clusters_job,
    bench_full_gmeans
);
criterion_main!(engine);
