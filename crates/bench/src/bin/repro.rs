//! `repro` — regenerate the tables and figures of *"Determining the k
//! in k-means with MapReduce"* (EDBT 2014).
//!
//! ```text
//! repro <experiment> [--points N] [--k-factor F] [--seed S] [--quick]
//!
//! experiments:
//!   fig1      centers placed by successive G-means iterations
//!   fig2      reducer heap requirement sweep + 64 B/pt regression
//!   table1    G-means across k (discovered k, time, iterations)
//!   table2    single multi-k-means iteration time across k_max
//!   fig3      both time series and the crossover (runs table1+table2)
//!   table3    quality: average point-to-center distance
//!   fig4      the local-minimum illustration (ASCII plot)
//!   table4    node-count scalability (Figure 5)
//!   ablations design-choice ablations
//!   kernels   nearest-center kernel benchmark (writes BENCH_kernels.json)
//!   scheduler multi-tenant fair-share vs FIFO (writes BENCH_scheduler.json)
//!   elastic   membership elasticity: joins, spot revocations (writes BENCH_elastic.json)
//!   scale     out-of-core spill-merge at 100x-1000x paper scale (writes BENCH_scale.json)
//!   chaos     composite storm intensity sweep, zero answer drift (writes BENCH_chaos.json)
//!   all       everything above, in order
//! ```
//!
//! Defaults run 100k-point datasets with the paper's k values halved
//! (the paper uses 10M points; halving k keeps ≥125 points per cluster,
//! which the split test needs — see EXPERIMENTS.md). `--quick` shrinks
//! further for a smoke pass. Scaled-down runs preserve the paper's
//! shapes, not its absolute numbers.

use gmr_bench::experiments::{
    ablations, chaos, elastic, fig1, fig2, fig4, kernels, scale as scale_exp, scheduler, table3,
    table4, times,
};
use gmr_bench::ExperimentScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut scale = ExperimentScale::default();
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                scale = ExperimentScale::quick();
                quick = true;
            }
            "--points" => {
                i += 1;
                scale.points = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--points needs a number"));
            }
            "--k-factor" => {
                i += 1;
                scale.k_factor = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--k-factor needs a number"));
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage("missing experiment name"));

    println!(
        "# repro {experiment} — points={} k_factor={} seed={}",
        scale.points, scale.k_factor, scale.seed
    );
    let started = std::time::Instant::now();
    match experiment.as_str() {
        "fig1" => print!("{}", fig1::render(&fig1::run(&scale))),
        "fig2" => print!("{}", fig2::render(&fig2::run(&scale))),
        "table1" => print!("{}", times::render_table1(&times::run_table1(&scale))),
        "table2" => print!("{}", times::render_table2(&times::run_table2(&scale))),
        "fig3" => {
            let t1 = times::run_table1(&scale);
            let t2 = times::run_table2(&scale);
            print!("{}", times::render_table1(&t1));
            print!("{}", times::render_table2(&t2));
            print!("{}", times::render_fig3(&t1, &t2));
        }
        "table3" => print!("{}", table3::render(&table3::run(&scale))),
        "fig4" => print!("{}", fig4::render(&fig4::run(&scale))),
        "table4" | "fig5" => {
            let (default_rows, task_rows) = table4::run_both(&scale);
            print!("{}", table4::render(&default_rows, &task_rows));
        }
        "ablations" => print!("{}", ablations::render(&ablations::run(&scale))),
        "kernels" => {
            let bench = kernels::run(&scale);
            print!("{}", kernels::render(&bench));
            kernels::assert_no_regression(&bench);
            write_kernels_json(&bench);
        }
        "scheduler" => {
            let bench = scheduler::run(&scale);
            print!("{}", scheduler::render(&bench));
            write_scheduler_json(&bench);
        }
        "elastic" => {
            let bench = elastic::run(&scale);
            print!("{}", elastic::render(&bench));
            write_elastic_json(&bench);
        }
        "scale" => {
            let bench = scale_exp::run(&scale);
            print!("{}", scale_exp::render(&bench));
            if quick {
                scale_exp::assert_within_budget(&bench, 1.3);
            }
            write_scale_json(&bench);
        }
        "chaos" => {
            let bench = chaos::run(&scale);
            print!("{}", chaos::render(&bench));
            write_chaos_json(&bench);
        }
        "all" => {
            print!("{}", fig1::render(&fig1::run(&scale)));
            print!("{}", fig2::render(&fig2::run(&scale)));
            let t1 = times::run_table1(&scale);
            let t2 = times::run_table2(&scale);
            print!("{}", times::render_table1(&t1));
            print!("{}", times::render_table2(&t2));
            print!("{}", times::render_fig3(&t1, &t2));
            print!("{}", table3::render(&table3::run(&scale)));
            print!("{}", fig4::render(&fig4::run(&scale)));
            let (default_rows, task_rows) = table4::run_both(&scale);
            print!("{}", table4::render(&default_rows, &task_rows));
            print!("{}", ablations::render(&ablations::run(&scale)));
            let bench = kernels::run(&scale);
            print!("{}", kernels::render(&bench));
            write_kernels_json(&bench);
            let sched = scheduler::run(&scale);
            print!("{}", scheduler::render(&sched));
            write_scheduler_json(&sched);
            let el = elastic::run(&scale);
            print!("{}", elastic::render(&el));
            write_elastic_json(&el);
            let sc = scale_exp::run(&scale);
            print!("{}", scale_exp::render(&sc));
            if quick {
                scale_exp::assert_within_budget(&sc, 1.3);
            }
            write_scale_json(&sc);
            let ch = chaos::run(&scale);
            print!("{}", chaos::render(&ch));
            write_chaos_json(&ch);
        }
        other => usage(&format!("unknown experiment {other}")),
    }
    eprintln!(
        "\n[{experiment} finished in {:.1}s]",
        started.elapsed().as_secs_f64()
    );
}

fn write_kernels_json(bench: &kernels::KernelBench) {
    let path = "BENCH_kernels.json";
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

fn write_scheduler_json(bench: &scheduler::SchedulerBench) {
    let path = "BENCH_scheduler.json";
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

fn write_elastic_json(bench: &elastic::ElasticBench) {
    let path = "BENCH_elastic.json";
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

fn write_chaos_json(bench: &chaos::ChaosBench) {
    let path = "BENCH_chaos.json";
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

fn write_scale_json(bench: &scale_exp::ScaleBench) {
    let path = "BENCH_scale.json";
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("[could not write {path}: {e}]"),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro <fig1|fig2|table1|table2|fig3|table3|fig4|table4|ablations|kernels|\
         scheduler|elastic|scale|chaos|all> [--points N] [--k-factor F] [--seed S] [--quick]"
    );
    std::process::exit(2);
}
