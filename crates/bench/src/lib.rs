//! Experiment harness regenerating every table and figure of
//! *"Determining the k in k-means with MapReduce"* (EDBT 2014).
//!
//! Each submodule of [`experiments`] reproduces one artifact of the
//! paper's evaluation (§5) and returns structured rows, so the same
//! code drives the `repro` binary, the smoke tests and EXPERIMENTS.md.
//!
//! The paper ran 10M–100M-point datasets on a physical Hadoop cluster;
//! this harness defaults to laptop-scale datasets (see
//! [`ExperimentScale`]) and reports **simulated makespan** from the
//! engine's cost model next to real wall-clock. Absolute numbers are
//! not comparable with the paper's; the *shapes* (linearity in k, the
//! G-means/multi-k crossover, node speedup, the 64 B/pt heap line, the
//! local-minimum quality gap) are, and EXPERIMENTS.md records both.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::ExperimentScale;
