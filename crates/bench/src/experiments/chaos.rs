//! Chaos benchmark: composite storm intensity vs makespan, with zero
//! answer drift (`BENCH_chaos.json`).
//!
//! A fixed composite storm — transient failures, shuffle-fetch flakes
//! with exponential backoff, heartbeat false positives (zombie
//! fencing) and spot revocation sweeps at once — is scaled by an
//! intensity multiplier λ ∈ {0, 0.5, 1.0, 1.5} and driven through the
//! full G-means driver. The report shows what the robustness layer
//! promises:
//!
//! * the discovered k is identical at every intensity (asserted here,
//!   not just in the test suite) — faults buy simulated time, never a
//!   different answer;
//! * makespan inflation grows with λ and stays bounded — retries,
//!   re-executed maps and fenced zombies all recover;
//! * the fault ledger (fetch retries, backoff seconds, fenced
//!   attempts, rejected zombie commits, re-executed maps) itemizes
//!   where the extra time went.

use std::sync::Arc;

use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::counters::Counter;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::faults::{FaultPlan, MembershipPlan};
use gmr_mapreduce::runtime::JobRunner;

use crate::harness::{render_table, ExperimentScale};

/// The staged dataset path.
const DATA: &str = "points.txt";

/// DFS block size: several map waves per job, so storms land
/// mid-workload.
const BLOCK_SIZE: usize = 32 * 1024;

/// Injection seed for both plans (chosen so every dimension fires at
/// λ ≥ 0.5 on a quick run without ever emptying the cluster).
const STORM_SEED: u64 = 0xC4A0;

/// The base (λ = 1) storm intensities.
const BASE_TRANSIENTS: f64 = 0.08;
const BASE_FETCH_FLAKES: f64 = 0.18;
const BASE_HEARTBEAT_FPS: f64 = 0.08;
const BASE_REVOCATION_FRACTION: f64 = 0.12;

/// One intensity step of the sweep.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Storm intensity multiplier λ.
    pub intensity: f64,
    /// Discovered k.
    pub k: usize,
    /// Jobs the driver launched.
    pub jobs: usize,
    /// Simulated makespan.
    pub makespan: f64,
    /// Makespan over the calm (λ = 0) makespan.
    pub inflation: f64,
    /// Shuffle fetches retried after flakes.
    pub fetch_retries: u64,
    /// Simulated seconds charged to fetch backoff.
    pub backoff_secs: u64,
    /// Attempts fenced by heartbeat false positives.
    pub attempts_fenced: u64,
    /// Late zombie commits the fence rejected.
    pub zombie_commits_rejected: u64,
    /// Map tasks re-executed (burned fetch budgets, revocations).
    pub maps_reexecuted: u64,
}

/// The benchmark report.
#[derive(Debug)]
pub struct ChaosBench {
    /// One row per intensity, ascending λ.
    pub rows: Vec<ChaosRow>,
    /// Inflation of the hardest storm (last row).
    pub max_inflation: f64,
}

impl ChaosBench {
    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"chaos\",\n");
        s.push_str(&format!(
            "  \"max_inflation\": {:.4},\n",
            self.max_inflation
        ));
        s.push_str("  \"intensities\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"intensity\": {:.2}, \"k\": {}, \"jobs\": {}, \
                 \"makespan_secs\": {:.3}, \"inflation\": {:.4}, \
                 \"fetch_retries\": {}, \"backoff_secs\": {}, \
                 \"attempts_fenced\": {}, \"zombie_commits_rejected\": {}, \
                 \"maps_reexecuted\": {}}}{}\n",
                r.intensity,
                r.k,
                r.jobs,
                r.makespan,
                r.inflation,
                r.fetch_retries,
                r.backoff_secs,
                r.attempts_fenced,
                r.zombie_commits_rejected,
                r.maps_reexecuted,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The composite storm at intensity λ. λ = 0 is a calm cluster.
fn storm_at(intensity: f64) -> ClusterConfig {
    let mut faults = FaultPlan::none().with_seed(STORM_SEED).with_max_attempts(8);
    let mut membership = MembershipPlan::none().with_seed(STORM_SEED);
    if intensity > 0.0 {
        faults = faults
            .with_transient_failures((BASE_TRANSIENTS * intensity).min(0.9))
            .with_fetch_flakes((BASE_FETCH_FLAKES * intensity).min(0.9))
            .with_fetch_backoff(0.5)
            .with_heartbeat_false_positives((BASE_HEARTBEAT_FPS * intensity).min(0.9));
        membership =
            membership.with_revocation_sweeps(3, (BASE_REVOCATION_FRACTION * intensity).min(0.9));
    }
    ClusterConfig::default()
        .with_faults(faults)
        .with_membership(membership)
}

/// Stages the dataset in a fresh DFS and runs G-means under the storm.
fn run_intensity(spec: &GaussianMixture, intensity: f64) -> ChaosRow {
    let dfs = Arc::new(Dfs::new(BLOCK_SIZE));
    spec.generate_to_dfs(&dfs, DATA)
        .expect("dataset generation");
    let runner = JobRunner::new(dfs, storm_at(intensity)).expect("valid cluster");
    let r = MRGMeans::new(runner, GMeansConfig::default())
        .run(DATA)
        .expect("driver result");
    assert!(
        r.failure.is_none(),
        "λ={intensity}: run degraded: {:?}",
        r.failure
    );
    ChaosRow {
        intensity,
        k: r.k(),
        jobs: r.jobs,
        makespan: r.simulated_secs,
        inflation: 1.0, // filled in by `run` once λ = 0 is known
        fetch_retries: r.counters.get(Counter::FetchRetries),
        backoff_secs: r.counters.get(Counter::FetchBackoffSecs),
        attempts_fenced: r.counters.get(Counter::AttemptsFenced),
        zombie_commits_rejected: r.counters.get(Counter::ZombieCommitsRejected),
        maps_reexecuted: r.counters.get(Counter::MapsReexecuted),
    }
}

/// Runs the benchmark.
pub fn run(scale: &ExperimentScale) -> ChaosBench {
    let k = scale.k(100);
    let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed ^ 0xc405);

    let mut rows: Vec<ChaosRow> = [0.0, 0.5, 1.0, 1.5]
        .iter()
        .map(|&intensity| run_intensity(&spec, intensity))
        .collect();
    let calm_makespan = rows[0].makespan;
    for r in &mut rows {
        r.inflation = r.makespan / calm_makespan;
    }
    // The storm must never move the answer: one k across the sweep.
    for r in &rows[1..] {
        assert_eq!(
            r.k, rows[0].k,
            "λ={}: the storm changed the discovered k",
            r.intensity
        );
    }
    ChaosBench {
        max_inflation: rows.last().expect("sweep is non-empty").inflation,
        rows,
    }
}

/// Renders the report.
pub fn render(b: &ChaosBench) -> String {
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.intensity),
                r.k.to_string(),
                r.jobs.to_string(),
                format!("{:.0}", r.makespan),
                format!("{:.2}x", r.inflation),
                r.fetch_retries.to_string(),
                r.backoff_secs.to_string(),
                r.attempts_fenced.to_string(),
                r.zombie_commits_rejected.to_string(),
                r.maps_reexecuted.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        "Chaos: G-means under composite storms of intensity λ",
        &[
            "λ", "k", "jobs", "makespan", "inflate", "retries", "backoff", "fenced", "zombies",
            "re-exec",
        ],
        &rows,
    );
    out.push_str(&format!(
        "hardest storm (λ=1.5): {:.2}x the calm makespan, identical k at every intensity\n",
        b.max_inflation
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meets_the_acceptance_floor() {
        let b = run(&ExperimentScale::quick());
        assert_eq!(b.rows.len(), 4);
        // `run` already asserts the k invariant; check the ledger.
        let hardest = b.rows.last().unwrap();
        assert!(
            hardest.fetch_retries > 0,
            "an 27% flake rate never flaked a fetch"
        );
        assert!(hardest.backoff_secs > 0, "retries must charge backoff");
        assert!(
            hardest.attempts_fenced > 0,
            "a 12% false-positive rate never fenced anyone"
        );
        assert_eq!(
            hardest.zombie_commits_rejected, hardest.attempts_fenced,
            "every fenced zombie's late commit must be rejected"
        );
        // Storms cost simulated time, monotonically-ish and boundedly:
        // the hardest storm inflates, and recovery stays bounded.
        assert!(
            b.max_inflation > 1.0,
            "a composite storm must inflate the makespan"
        );
        // Quick-scale makespans are job-setup-dominated and the sweep
        // charges full exponential backoff to tiny jobs, so the ratio
        // overstates the real-scale cost; 20x still proves recovery is
        // bounded (a lost output or livelocked retry would never
        // finish at all).
        assert!(
            b.max_inflation < 20.0,
            "λ=1.5 inflated the makespan {:.2}x — recovery is not bounded",
            b.max_inflation
        );
        assert!(
            b.rows[1].makespan >= b.rows[0].makespan,
            "any storm must cost at least calm time"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&ExperimentScale::quick());
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"chaos\""));
        assert!(j.contains("\"max_inflation\""));
        assert_eq!(j.matches("\"intensity\":").count(), b.rows.len());
    }
}
