//! Ablations of the design choices §3 argues for.
//!
//! The paper justifies four implementation decisions qualitatively;
//! these runs quantify each on identical data:
//!
//! 1. **combiner on/off** — shuffle volume of the k-means job ("this
//!    effect is largely mitigated by the use of a combiner");
//! 2. **k-means iterations per G-means round** — the paper found "only
//!    two k-means iterations are sufficient";
//! 3. **forced test strategy** — what the §3.2 switch buys over always
//!    using one job shape;
//! 4. **center-merge post-processing** — how much of the ≈1.5×
//!    overestimate the future-work merge step recovers.

use std::sync::Arc;

use gmeans::mr::{CenterSet, ExecutionMode, KMeansJob, TestStrategy};
use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::counters::Counter;
use gmr_mapreduce::job::JobConfig;

use crate::harness::{reload, render_table, stage, ExperimentScale};

/// Combined ablation report.
pub struct Ablations {
    /// (combiner?, shuffle bytes, reduce input records, sim secs).
    pub combiner: Vec<(bool, u64, u64, f64)>,
    /// (kmeans iters/round, k found, avg distance, sim secs, g-means iters).
    pub refinement: Vec<(usize, usize, f64, f64, usize)>,
    /// (strategy label, sim secs, heap peak bytes, jobs).
    pub strategy: Vec<(String, f64, u64, usize)>,
    /// (merge threshold in σ, k after merge); k_real for reference.
    pub merge: (usize, Vec<(f64, usize)>),
    /// (init label, avg distance) — k-means++ vs random for multi-k.
    pub init_quality: Vec<(String, f64)>,
    /// (mode label, dataset reads, sim secs) — Hadoop vs Spark-style.
    pub engine_mode: Vec<(String, u64, f64)>,
    /// (search label, distance evaluations, sim secs) — linear vs k-d.
    pub nn_search: Vec<(String, u64, f64)>,
}

/// Runs every ablation.
pub fn run(scale: &ExperimentScale) -> Ablations {
    let k = scale.k(128);
    let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed + 9000);

    // ---- 1. combiner on/off on one k-means job ----
    let mut combiner = Vec::new();
    for on in [true, false] {
        let (runner, dfs, truth) = stage(&spec, ClusterConfig::default());
        let mut centers = CenterSet::new(10);
        for (i, row) in truth.rows().enumerate() {
            centers.push(i as i64, row);
        }
        let job = KMeansJob::new(Arc::new(centers)).with_combiner(on);
        let result = runner
            .run(&job, "points.txt", &JobConfig::with_reducers(8))
            .expect("combiner ablation job");
        combiner.push((
            on,
            result.counters.get(Counter::ShuffleBytes),
            result.counters.get(Counter::ReduceInputRecords),
            result.timing.simulated_secs,
        ));
        drop(dfs);
    }

    // ---- 2. k-means iterations per G-means round ----
    let mut refinement = Vec::new();
    for iters in [1usize, 2, 3, 4] {
        let (runner, dfs, _) = stage(&spec, ClusterConfig::default());
        let config = GMeansConfig {
            kmeans_iterations_per_round: iters,
            ..GMeansConfig::default()
        };
        let r = MRGMeans::new(runner, config)
            .run("points.txt")
            .expect("refinement ablation");
        let data = reload(&dfs, 10);
        refinement.push((
            iters,
            r.k(),
            average_distance(&data, &r.centers),
            r.simulated_secs,
            r.iterations,
        ));
    }

    // ---- 3. forced strategies ----
    let mut strategy = Vec::new();
    for (label, force) in [
        ("auto (paper rule)", None),
        ("always TestFewClusters", Some(TestStrategy::FewClusters)),
        ("always TestClusters", Some(TestStrategy::Clusters)),
    ] {
        let (runner, _dfs, _) = stage(&spec, ClusterConfig::default());
        let r = MRGMeans::new(runner, GMeansConfig::default())
            .with_forced_strategy(force)
            .run("points.txt")
            .expect("strategy ablation");
        strategy.push((
            label.to_string(),
            r.simulated_secs,
            r.counters.get(Counter::HeapPeakBytes),
            r.jobs,
        ));
    }

    // ---- 4. merge threshold sweep ----
    let (runner, _dfs, _) = stage(&spec, ClusterConfig::default());
    let r = MRGMeans::new(runner, GMeansConfig::default())
        .run("points.txt")
        .expect("merge ablation");
    let sweep = [0.0f64, 2.0, 4.0, 8.0]
        .iter()
        .map(|sigmas| {
            let merged = merge_close_centers(&r.centers, &r.counts, sigmas * spec.stddev);
            (*sigmas, merged.centers.len())
        })
        .collect();

    // ---- 5. init quality: the §2 claim that k-means++ avoids local
    //         minima, measured through the serial pipeline ----
    let small = GaussianMixture::paper_r10(scale.points.min(10_000), scale.k(32), scale.seed + 42)
        .generate()
        .expect("init dataset");
    let mut init_quality = Vec::new();
    for (label, strat) in [
        ("random", InitStrategy::Random),
        ("k-means++", InitStrategy::KMeansPlusPlus),
    ] {
        let mut total = 0.0;
        for seed in 0..3 {
            let res = kmeans(
                &small.points,
                &KMeansConfig::new(scale.k(32))
                    .with_iterations(10)
                    .with_seed(seed),
                strat,
            );
            total += average_distance(&small.points, &res.centers);
        }
        init_quality.push((label.to_string(), total / 3.0));
    }

    // ---- 6. execution engine: on-disk (Hadoop) vs cached (Spark) ----
    let mut engine_mode = Vec::new();
    for (label, mode) in [
        ("on-disk (Hadoop-style)", ExecutionMode::OnDisk),
        ("cached (Spark-style, §6)", ExecutionMode::Cached),
    ] {
        let (runner, _dfs, _) = stage(&spec, ClusterConfig::default());
        let r = MRGMeans::new(runner, GMeansConfig::default())
            .with_execution_mode(mode)
            .run("points.txt")
            .expect("engine-mode ablation");
        engine_mode.push((label.to_string(), r.dataset_reads, r.simulated_secs));
    }

    // ---- 7. nearest-center search: linear scan vs k-d tree ----
    let mut nn_search = Vec::new();
    for (label, kd) in [
        ("linear scan (paper)", false),
        ("k-d tree (mrkd-style)", true),
    ] {
        let (runner, _dfs, _) = stage(&spec, ClusterConfig::default());
        let r = MRGMeans::new(runner, GMeansConfig::default())
            .with_kd_index(kd)
            .run("points.txt")
            .expect("nn-search ablation");
        nn_search.push((
            label.to_string(),
            r.counters.get(Counter::DistanceComputations),
            r.simulated_secs,
        ));
    }

    Ablations {
        combiner,
        refinement,
        strategy,
        merge: (k, sweep),
        init_quality,
        engine_mode,
        nn_search,
    }
}

/// Renders the full ablation report.
pub fn render(a: &Ablations) -> String {
    let mut out = String::new();
    out.push_str(&render_table(
        "Ablation 1: map-side combiner (one k-means job)",
        &[
            "combiner",
            "shuffle bytes",
            "reduce input records",
            "sim secs",
        ],
        &a.combiner
            .iter()
            .map(|(on, bytes, records, secs)| {
                vec![
                    if *on { "on" } else { "off" }.into(),
                    bytes.to_string(),
                    records.to_string(),
                    format!("{secs:.1}"),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_table(
        "Ablation 2: k-means iterations per G-means round (paper uses 2)",
        &[
            "iters/round",
            "k found",
            "avg distance",
            "sim secs",
            "g-means iters",
        ],
        &a.refinement
            .iter()
            .map(|(i, k, d, s, gi)| {
                vec![
                    i.to_string(),
                    k.to_string(),
                    format!("{d:.3}"),
                    format!("{s:.0}"),
                    gi.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_table(
        "Ablation 3: split-test strategy (§3.2 switch rule vs forced)",
        &["strategy", "sim secs", "heap peak bytes", "jobs"],
        &a.strategy
            .iter()
            .map(|(l, s, h, j)| vec![l.clone(), format!("{s:.0}"), h.to_string(), j.to_string()])
            .collect::<Vec<_>>(),
    ));
    let (k_real, sweep) = &a.merge;
    out.push_str(&render_table(
        &format!("Ablation 4: center-merge threshold (k_real = {k_real})"),
        &["threshold (σ)", "k after merge"],
        &sweep
            .iter()
            .map(|(t, k)| vec![format!("{t:.0}"), k.to_string()])
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_table(
        "Ablation 5: initialization (serial k-means, mean of 3 seeds)",
        &["init", "avg distance"],
        &a.init_quality
            .iter()
            .map(|(l, d)| vec![l.clone(), format!("{d:.3}")])
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_table(
        "Ablation 6: execution engine (the paper's §6 future work)",
        &["engine", "dataset reads", "sim secs"],
        &a.engine_mode
            .iter()
            .map(|(l, r, s)| vec![l.clone(), r.to_string(), format!("{s:.0}")])
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_table(
        "Ablation 7: nearest-center search (§2's mrkd-tree citation)",
        &["search", "distance evaluations", "sim secs"],
        &a.nn_search
            .iter()
            .map(|(l, d, s)| vec![l.clone(), d.to_string(), format!("{s:.0}")])
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablations_have_expected_directions() {
        let a = run(&ExperimentScale::quick());

        // Combiner slashes shuffle volume.
        let on = &a.combiner[0];
        let off = &a.combiner[1];
        assert!(on.0 && !off.0);
        assert!(
            on.1 < off.1 / 5,
            "combiner shuffle {} vs {} without",
            on.1,
            off.1
        );

        // More refinement iterations never blow up the center count and
        // cost more simulated time per round.
        assert!(a.refinement.len() == 4);
        assert!(a.refinement[3].3 > a.refinement[0].3);

        // Three strategies all completed and auto is never the worst in
        // heap peak (it exists to protect the reducer heap).
        assert_eq!(a.strategy.len(), 3);
        let auto_heap = a.strategy[0].2;
        let clusters_heap = a.strategy[2].2;
        assert!(auto_heap <= clusters_heap);

        // Merging with a growing radius is monotone non-increasing and
        // moves k toward k_real.
        let (k_real, sweep) = &a.merge;
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        let k0 = sweep[0].1;
        let k8 = sweep.last().unwrap().1;
        assert!(k8 <= k0);
        assert!(
            k8 >= k_real / 2,
            "merge collapsed too far: {k8} vs {k_real}"
        );

        // k-means++ at least matches random init quality.
        assert!(a.init_quality[1].1 <= a.init_quality[0].1 * 1.02);

        // Cached mode: 2 dataset reads vs 1 per job, same-or-less time.
        let (_, disk_reads, disk_secs) = &a.engine_mode[0];
        let (_, cached_reads, cached_secs) = &a.engine_mode[1];
        assert_eq!(*cached_reads, 2);
        assert!(*disk_reads > 10);
        assert!(cached_secs <= disk_secs);

        // k-d search never evaluates more distances than the scan.
        assert!(a.nn_search[1].1 <= a.nn_search[0].1);
    }
}
