//! Elastic-membership benchmark: what joins buy and revocations cost
//! (`BENCH_elastic.json`).
//!
//! Two scenarios, both running the full G-means driver:
//!
//! 1. **Mid-run scale-out** — a 3-node cluster doubles to 6 nodes at
//!    job epoch 2 ([`MembershipPlan::with_node_join`]). The elastic
//!    makespan must land strictly between the fixed 3-node and fixed
//!    6-node runs: early jobs pay the small cluster, later jobs enjoy
//!    the large one, and the DFS rebalances blocks onto the newcomers
//!    so their map slots get node-local work.
//! 2. **Spot revocations** — the paper's 4-node cluster under a sweep
//!    that revokes each live node with probability 25% every other
//!    epoch ([`MembershipPlan::with_revocation_sweeps`]). Stranded map
//!    outputs are re-executed on survivors; the slowdown is bounded
//!    and the discovered k identical.
//!
//! Membership only ever moves *where* and *when* tasks run. Every
//! scenario must report the same discovered k — that invariant is
//! asserted here, not just in the test suite.

use std::sync::Arc;

use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::counters::Counter;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::faults::MembershipPlan;
use gmr_mapreduce::runtime::JobRunner;

use crate::harness::{render_table, ExperimentScale};

/// The staged dataset path.
const DATA: &str = "points.txt";

/// DFS block size: small enough that every job runs several map waves,
/// so membership changes land mid-workload instead of between waves.
const BLOCK_SIZE: usize = 32 * 1024;

/// Seed of the revocation sweep (chosen so the sweep actually revokes
/// someone during a quick run without ever emptying the cluster).
const SWEEP_SEED: u64 = 0x4;

/// One scenario of the benchmark.
#[derive(Clone, Debug)]
pub struct ElasticRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Node count description (e.g. "3→6").
    pub nodes: String,
    /// Discovered k.
    pub k: usize,
    /// Jobs the driver launched.
    pub jobs: usize,
    /// Simulated makespan.
    pub makespan: f64,
    /// Nodes that joined mid-run.
    pub node_joins: u64,
    /// Nodes revoked by sweeps.
    pub nodes_revoked: u64,
    /// DFS blocks proactively moved by membership changes.
    pub blocks_rebalanced: u64,
    /// Map tasks re-executed after revocations stranded their output.
    pub maps_reexecuted: u64,
}

/// The benchmark report.
#[derive(Debug)]
pub struct ElasticBench {
    /// One row per scenario.
    pub rows: Vec<ElasticRow>,
    /// Fixed-3-node makespan over elastic 3→6 makespan (> 1 means the
    /// join paid off).
    pub join_speedup: f64,
    /// Revoked makespan over fixed-4-node makespan (≥ 1; bounded).
    pub revocation_slowdown: f64,
}

impl ElasticBench {
    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"elastic\",\n");
        s.push_str(&format!("  \"join_speedup\": {:.4},\n", self.join_speedup));
        s.push_str(&format!(
            "  \"revocation_slowdown\": {:.4},\n",
            self.revocation_slowdown
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"nodes\": \"{}\", \"k\": {}, \
                 \"jobs\": {}, \"makespan_secs\": {:.3}, \"node_joins\": {}, \
                 \"nodes_revoked\": {}, \"blocks_rebalanced\": {}, \
                 \"maps_reexecuted\": {}}}{}\n",
                r.scenario,
                r.nodes,
                r.k,
                r.jobs,
                r.makespan,
                r.node_joins,
                r.nodes_revoked,
                r.blocks_rebalanced,
                r.maps_reexecuted,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Stages the dataset in a fresh DFS and runs G-means on `cluster`.
fn run_scenario(
    spec: &GaussianMixture,
    cluster: ClusterConfig,
    scenario: &'static str,
    nodes: String,
) -> ElasticRow {
    let dfs = Arc::new(Dfs::new(BLOCK_SIZE));
    spec.generate_to_dfs(&dfs, DATA)
        .expect("dataset generation");
    let runner = JobRunner::new(dfs, cluster).expect("valid cluster");
    let r = MRGMeans::new(runner, GMeansConfig::default())
        .run(DATA)
        .expect("driver result");
    assert!(
        r.failure.is_none(),
        "{scenario}: run degraded: {:?}",
        r.failure
    );
    ElasticRow {
        scenario,
        nodes,
        k: r.k(),
        jobs: r.jobs,
        makespan: r.simulated_secs,
        node_joins: r.counters.get(Counter::NodeJoins),
        nodes_revoked: r.counters.get(Counter::NodesRevoked),
        blocks_rebalanced: r.counters.get(Counter::DfsBlocksRebalanced),
        maps_reexecuted: r.counters.get(Counter::MapsReexecuted),
    }
}

/// Runs the benchmark.
pub fn run(scale: &ExperimentScale) -> ElasticBench {
    let k = scale.k(100);
    let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed ^ 0xe1a5);

    // Scale-out: fixed 3, elastic 3→6 (nodes 3..5 join at epoch 2),
    // fixed 6 as the lower-bound reference.
    let join_plan = MembershipPlan::none()
        .with_node_join(2, 3)
        .with_node_join(2, 4)
        .with_node_join(2, 5);
    let fixed3 = run_scenario(
        &spec,
        ClusterConfig::with_nodes(3),
        "fixed small",
        "3".into(),
    );
    let elastic = run_scenario(
        &spec,
        ClusterConfig::with_nodes(3).with_membership(join_plan),
        "join mid-run",
        "3→6".into(),
    );
    let fixed6 = run_scenario(
        &spec,
        ClusterConfig::with_nodes(6),
        "fixed large",
        "6".into(),
    );

    // Spot market: the paper's 4-node cluster, 25% revocation sweeps
    // every other epoch.
    let sweep_plan = MembershipPlan::none()
        .with_seed(SWEEP_SEED)
        .with_revocation_sweeps(2, 0.25);
    let fixed4 = run_scenario(&spec, ClusterConfig::default(), "fixed paper", "4".into());
    let revoked = run_scenario(
        &spec,
        ClusterConfig::default().with_membership(sweep_plan),
        "25% spot sweeps",
        "4 (spot)".into(),
    );

    let rows = vec![fixed3, elastic, fixed6, fixed4, revoked];
    // Membership must never move the answer: one k across the board.
    for r in &rows[1..] {
        assert_eq!(
            r.k, rows[0].k,
            "{}: membership changed the discovered k",
            r.scenario
        );
    }
    ElasticBench {
        join_speedup: rows[0].makespan / rows[1].makespan,
        revocation_slowdown: rows[4].makespan / rows[3].makespan,
        rows,
    }
}

/// Renders the report.
pub fn render(b: &ElasticBench) -> String {
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.nodes.clone(),
                r.k.to_string(),
                r.jobs.to_string(),
                format!("{:.0}", r.makespan),
                r.node_joins.to_string(),
                r.nodes_revoked.to_string(),
                r.blocks_rebalanced.to_string(),
                r.maps_reexecuted.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        "Elastic membership: G-means under joins and revocations",
        &[
            "scenario", "nodes", "k", "jobs", "makespan", "joins", "revoked", "rebal", "re-exec",
        ],
        &rows,
    );
    out.push_str(&format!(
        "mid-run 3→6 join: {:.2}x faster than fixed 3 nodes; \
         25% spot sweeps: {:.2}x slower than stable capacity — same k everywhere\n",
        b.join_speedup, b.revocation_slowdown
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meets_the_acceptance_floor() {
        let b = run(&ExperimentScale::quick());
        assert_eq!(b.rows.len(), 5);
        // The join pays: elastic lands strictly between fixed 3 and 6.
        assert!(
            b.join_speedup > 1.0,
            "mid-run join must beat the fixed small cluster (speedup {:.3})",
            b.join_speedup
        );
        let (elastic, fixed6) = (&b.rows[1], &b.rows[2]);
        assert!(
            elastic.makespan >= fixed6.makespan,
            "an elastic start on 3 nodes cannot beat 6 nodes throughout"
        );
        assert_eq!(elastic.node_joins, 3);
        assert!(elastic.blocks_rebalanced > 0, "joins must pull blocks");
        // Revocations cost time, boundedly, and revoke someone.
        let revoked = &b.rows[4];
        assert!(revoked.nodes_revoked >= 1, "the sweep revoked nobody");
        assert!(
            b.revocation_slowdown > 1.0,
            "revoked capacity must cost simulated time"
        );
        // Quick-scale makespans are job-setup-dominated, so the ratio
        // overstates the real-scale cost; 6x still proves recovery is
        // bounded (an unrecovered kill would never finish at all).
        assert!(
            b.revocation_slowdown < 6.0,
            "25% sweeps slowed the run {:.2}x — recovery is not bounded",
            b.revocation_slowdown
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&ExperimentScale::quick());
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"elastic\""));
        assert!(j.contains("\"join_speedup\""));
        assert_eq!(j.matches("\"scenario\":").count(), b.rows.len());
    }
}
