//! Table 4 / Figure 5: scalability with the number of nodes.
//!
//! The paper clusters 100M points (R¹⁰, 1000 clusters) on 4, 8 and 12
//! Hadoop nodes: 798 / 447 / 323 minutes — roughly linear speedup. The
//! reproduction runs the same sweep on the simulated cluster; the
//! makespan comes from the engine's wave scheduler, so slot contention
//! (the mechanism behind the paper's curve) is what is measured.

use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;

use crate::harness::{render_table, ExperimentScale};

/// Paper reference: (nodes, minutes).
pub const PAPER_TABLE4: [(usize, f64); 3] = [(4, 798.0), (8, 447.0), (12, 323.0)];

/// One scalability row.
pub struct Table4Row {
    /// Node count.
    pub nodes: usize,
    /// Simulated seconds of the full G-means run.
    pub simulated_secs: f64,
    /// Real wall seconds.
    pub wall_secs: f64,
    /// Discovered k (sanity: identical work across node counts).
    pub k_found: usize,
}

/// Optional overrides for the scalability sweep (used by the smoke
/// test, which must keep the per-node runs' *work* identical and the
/// map-task count high enough to spread over 96 slots).
#[derive(Clone, Copy, Debug, Default)]
pub struct Table4Opts {
    /// Replace the default cost model.
    pub cost_model: Option<gmr_mapreduce::cost::CostModel>,
    /// Replace the default 256 KiB DFS block size.
    pub block_size: Option<usize>,
    /// Force one split-test strategy so the trajectory does not depend
    /// on the reduce capacity (which varies with the node count).
    pub force_strategy: Option<gmeans::mr::TestStrategy>,
}

/// Runs the sweep with the default cost model.
pub fn run(scale: &ExperimentScale) -> Vec<Table4Row> {
    run_with(scale, Table4Opts::default())
}

/// Runs the sweep with overrides. The dataset doubles the base scale
/// (the paper's scalability dataset is 10× its Table 1 datasets) and
/// uses a large k so the test phase has enough tasks to spread.
pub fn run_with(scale: &ExperimentScale, opts: Table4Opts) -> Vec<Table4Row> {
    let n = scale.points * 2;
    let k = scale.k(1000).min(n / 50); // keep ≥50 points per cluster
    let spec = GaussianMixture::paper_r10(n, k, scale.seed + 4000);
    PAPER_TABLE4
        .iter()
        .map(|&(nodes, _)| {
            let mut cluster = ClusterConfig::with_nodes(nodes);
            if let Some(model) = opts.cost_model {
                cluster.cost_model = model;
            }
            let (runner, _dfs, _truth) = crate::harness::stage_with_block(
                &spec,
                cluster,
                opts.block_size.unwrap_or(256 * 1024),
            );
            let r = MRGMeans::new(runner, GMeansConfig::default())
                .with_forced_strategy(opts.force_strategy)
                .run("points.txt")
                .expect("table 4 run");
            Table4Row {
                nodes,
                simulated_secs: r.simulated_secs,
                wall_secs: r.wall_secs,
                k_found: r.k(),
            }
        })
        .collect()
}

/// Renders the default-model rows and a task-time-only sweep (job
/// setup excluded) beside the paper's values. At the paper's 100M-point
/// scale the per-job setup constant is noise and the task-time column
/// is the relevant one; at laptop scale the default column shows how
/// strongly ~40 chained jobs × 6 s of setup cap the speedup.
pub fn render(rows: &[Table4Row], task_time_rows: &[Table4Row]) -> String {
    let base = rows.first().map(|r| r.simulated_secs).unwrap_or(1.0);
    let tbase = task_time_rows
        .first()
        .map(|r| r.simulated_secs)
        .unwrap_or(1.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(task_time_rows)
        .zip(&PAPER_TABLE4)
        .map(|((r, t), &(pn, pmin))| {
            vec![
                r.nodes.to_string(),
                format!("{:.0}", r.simulated_secs),
                format!("{:.2}x", base / r.simulated_secs),
                format!("{:.1}", t.simulated_secs),
                format!("{:.2}x", tbase / t.simulated_secs),
                r.k_found.to_string(),
                format!("{pn} nodes: {pmin:.0} min ({:.2}x)", 798.0 / pmin),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table 4 / Figure 5: G-means running time vs cluster size",
        &[
            "nodes",
            "sim secs",
            "speedup",
            "task-time secs",
            "speedup",
            "k found",
            "paper",
        ],
        &body,
    );
    out.push_str(
        "paper: \"running time decreases roughly linearly with the number of nodes\"\n\
         (task-time = simulated makespan without the fixed per-job setup, the paper's regime)\n",
    );
    out
}

/// Runs both sweeps (default model + task-time-only) for [`render`].
pub fn run_both(scale: &ExperimentScale) -> (Vec<Table4Row>, Vec<Table4Row>) {
    let default_rows = run(scale);
    let no_setup = gmr_mapreduce::cost::CostModel {
        job_setup_secs: 0.0,
        ..Default::default()
    };
    let task_rows = run_with(
        scale,
        Table4Opts {
            cost_model: Some(no_setup),
            ..Table4Opts::default()
        },
    );
    (default_rows, task_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_speedup_is_monotone() {
        // At quick scale the default model is setup-dominated (the
        // per-job constant does not shrink with nodes), so assert the
        // scheduler's shape under a compute-dominant model — the regime
        // of the paper's 100M-point run. Strategy is pinned because the
        // §3.2 switch reads the reduce capacity, which varies with the
        // node count and would change the work being scheduled; block
        // size is shrunk so there are enough map tasks to spread over
        // 96 slots.
        let opts = Table4Opts {
            cost_model: Some(gmr_mapreduce::cost::CostModel {
                job_setup_secs: 0.0,
                task_setup_secs: 0.0,
                secs_per_input_byte: 0.0,
                secs_per_shuffle_byte: 0.0,
                secs_per_compute_unit: 1e-6,
                secs_per_cached_point: 0.0,
                secs_per_checkpoint_byte: 0.0,
                ..Default::default()
            }),
            block_size: Some(8 * 1024),
            force_strategy: Some(gmeans::mr::TestStrategy::FewClusters),
        };
        let rows = run_with(&ExperimentScale::quick(), opts);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].simulated_secs >= rows[1].simulated_secs);
        assert!(rows[1].simulated_secs >= rows[2].simulated_secs);
        assert!(
            rows[0].simulated_secs / rows[2].simulated_secs > 1.3,
            "4→12 nodes speedup too small: {:?}",
            rows.iter().map(|r| r.simulated_secs).collect::<Vec<_>>()
        );
        // Same clustering regardless of node count.
        assert_eq!(rows[0].k_found, rows[1].k_found);
        assert_eq!(rows[1].k_found, rows[2].k_found);
    }
}
