//! Multi-tenant scheduler benchmark: fair-share vs FIFO arbitration of
//! real algorithm workloads (`BENCH_scheduler.json`).
//!
//! Three tenants share the paper's 4-node cluster through the
//! [`JobTracker`]: a `research` queue running Lloyd k-means, a `batch`
//! queue running a multi-k-means sweep, and an `interactive` queue with
//! a minimum share that submits a short job mid-run (the classic
//! "ad-hoc query against a busy cluster" scenario the Hadoop fair
//! scheduler was built for). Each tenant's jobs execute on the queue's
//! own runner — outputs and per-task durations are the single-tenant
//! ones, bit for bit — and the tracker then arbitrates the collected
//! demands twice, under fair share and under FIFO, so the comparison
//! isolates pure scheduling policy.
//!
//! Reported: makespan under both policies, per-tenant finish times
//! (FIFO starves the late arrival; fair share does not), the
//! share-error curve, preemption counts, and the node-local map
//! fraction of the locality-aware placement.

use std::sync::Arc;

use gmeans::mr::{MRKMeans, MultiKMeans};
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::cost::JobTiming;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::scheduler::{
    JobTracker, QueueConfig, SchedulingPolicy, ShareSample, TenantDemand, TrackerRun,
};

use crate::harness::{render_table, ExperimentScale};

/// The staged dataset path.
const DATA: &str = "points.txt";

/// DFS block size: small enough that every job runs several map waves
/// on the 32-slot cluster, so the policies actually contend.
const BLOCK_SIZE: usize = 32 * 1024;

/// One tenant of the benchmark.
#[derive(Clone, Debug)]
pub struct TenantRow {
    /// Queue name.
    pub queue: &'static str,
    /// Queue weight.
    pub weight: f64,
    /// Workload description.
    pub algorithm: String,
    /// Simulated submission time.
    pub submit_at: f64,
    /// Jobs the tenant ran.
    pub jobs: usize,
    /// Map tasks across those jobs.
    pub maps: usize,
    /// Finish time under fair share.
    pub finish_fair: f64,
    /// Finish time under FIFO.
    pub finish_fifo: f64,
}

/// The benchmark report.
#[derive(Debug)]
pub struct SchedulerBench {
    /// Cluster nodes.
    pub nodes: usize,
    /// Total map slots arbitrated.
    pub map_slots: usize,
    /// One row per tenant.
    pub tenants: Vec<TenantRow>,
    /// Makespan under fair share.
    pub fair_makespan: f64,
    /// Makespan under FIFO.
    pub fifo_makespan: f64,
    /// Time-averaged share error of the fair-share schedule.
    pub mean_share_error: f64,
    /// Share-error curve of the fair-share schedule (downsampled).
    pub share_curve: Vec<ShareSample>,
    /// Node-local fraction of winning map placements (fair share).
    pub node_local_fraction: f64,
    /// Attempts killed by min-share preemption (fair share).
    pub tasks_preempted: u64,
}

impl SchedulerBench {
    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"scheduler\",\n");
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"map_slots\": {},\n", self.map_slots));
        s.push_str(&format!(
            "  \"fair_makespan_secs\": {:.3},\n",
            self.fair_makespan
        ));
        s.push_str(&format!(
            "  \"fifo_makespan_secs\": {:.3},\n",
            self.fifo_makespan
        ));
        s.push_str(&format!(
            "  \"mean_share_error\": {:.4},\n",
            self.mean_share_error
        ));
        s.push_str(&format!(
            "  \"node_local_fraction\": {:.4},\n",
            self.node_local_fraction
        ));
        s.push_str(&format!(
            "  \"tasks_preempted\": {},\n",
            self.tasks_preempted
        ));
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"queue\": \"{}\", \"weight\": {}, \"algorithm\": \"{}\", \
                 \"submit_at\": {:.3}, \"jobs\": {}, \"maps\": {}, \
                 \"finish_fair_secs\": {:.3}, \"finish_fifo_secs\": {:.3}}}{}\n",
                t.queue,
                t.weight,
                t.algorithm,
                t.submit_at,
                t.jobs,
                t.maps,
                t.finish_fair,
                t.finish_fifo,
                if i + 1 < self.tenants.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"share_error_curve\": [\n");
        for (i, p) in self.share_curve.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"time_secs\": {:.3}, \"share_error\": {:.4}}}{}\n",
                p.time,
                p.share_error,
                if i + 1 < self.share_curve.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Builds a tracker with the benchmark's three queues.
fn tracker(dfs: &Arc<Dfs>, cluster: ClusterConfig, policy: SchedulingPolicy) -> JobTracker {
    let mut t = JobTracker::new(Arc::clone(dfs), cluster)
        .expect("valid cluster")
        .with_policy(policy);
    t.add_queue(QueueConfig::new("research").with_weight(2.0))
        .expect("research queue");
    t.add_queue(QueueConfig::new("batch")).expect("batch queue");
    t.add_queue(QueueConfig::new("interactive").with_min_share(cluster.total_map_slots() / 4))
        .expect("interactive queue");
    t
}

/// Turns a driver's per-iteration timings into one tenant demand.
fn demand(
    tracker: &JobTracker,
    queue: &str,
    submit_at: f64,
    label: &str,
    timings: &[JobTiming],
) -> TenantDemand {
    TenantDemand {
        queue: queue.into(),
        submit_at,
        jobs: timings
            .iter()
            .enumerate()
            .map(|(i, t)| tracker.demand_for(DATA, format!("{label}-{i}"), t))
            .collect(),
    }
}

fn finish_of(run: &TrackerRun, queue: &str) -> f64 {
    run.queues
        .iter()
        .find(|q| q.queue == queue)
        .map_or(0.0, |q| q.finish_secs)
}

/// Runs the benchmark.
pub fn run(scale: &ExperimentScale) -> SchedulerBench {
    let k = scale.k(100);
    let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed ^ 0x5c4d);
    let dfs = Arc::new(Dfs::new(BLOCK_SIZE));
    spec.generate_to_dfs(&dfs, DATA)
        .expect("dataset generation");
    let cluster = ClusterConfig::default();

    let fair = tracker(&dfs, cluster, SchedulingPolicy::FairShare);
    let fifo = tracker(&dfs, cluster, SchedulingPolicy::Fifo);

    // Execute each tenant's workload on its queue's runner; outputs and
    // durations are exactly the single-tenant ones.
    let research = MRKMeans::new(
        fair.runner("research").expect("queue").clone(),
        k,
        4,
        scale.seed,
    )
    .run(DATA)
    .expect("research k-means");
    let batch = MultiKMeans::new(
        fair.runner("batch").expect("queue").clone(),
        1,
        scale.k(50),
        1,
        2,
        scale.seed,
    )
    .run(DATA)
    .expect("batch multi-k-means");
    let interactive = MRKMeans::new(
        fair.runner("interactive").expect("queue").clone(),
        2.max(k / 4),
        2,
        scale.seed ^ 1,
    )
    .run(DATA)
    .expect("interactive k-means");

    // The ad-hoc tenant arrives while the first research map wave is
    // still on the cluster (setup + half the longest map).
    let first_wave = research.iteration_timings[0]
        .map_durations
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let submit_at = cluster.cost_model.job_setup_secs + 0.5 * first_wave;

    let demands = [
        demand(
            &fair,
            "research",
            0.0,
            "kmeans",
            &research.iteration_timings,
        ),
        demand(&fair, "batch", 0.0, "multik", &batch.iteration_timings),
        demand(
            &fair,
            "interactive",
            submit_at,
            "adhoc",
            &interactive.iteration_timings,
        ),
    ];

    let fair_run = fair.arbitrate(&demands).expect("fair arbitration");
    let fifo_run = fifo.arbitrate(&demands).expect("fifo arbitration");

    let rows = [
        ("research", 2.0, format!("k-means k={k} x4"), &demands[0]),
        (
            "batch",
            1.0,
            format!("multi-k 1..{} x2", scale.k(50)),
            &demands[1],
        ),
        (
            "interactive",
            1.0,
            format!("k-means k={} x2 (min-share)", 2.max(k / 4)),
            &demands[2],
        ),
    ];
    let tenants = rows
        .into_iter()
        .map(|(queue, weight, algorithm, d)| TenantRow {
            queue,
            weight,
            algorithm,
            submit_at: d.submit_at,
            jobs: d.jobs.len(),
            maps: d.jobs.iter().map(|j| j.maps.len()).sum(),
            finish_fair: finish_of(&fair_run, queue),
            finish_fifo: finish_of(&fifo_run, queue),
        })
        .collect();

    // Downsample the share curve to a plottable size.
    let stride = (fair_run.share_samples.len() / 64).max(1);
    let share_curve: Vec<ShareSample> = fair_run
        .share_samples
        .iter()
        .step_by(stride)
        .cloned()
        .collect();

    SchedulerBench {
        nodes: cluster.nodes,
        map_slots: cluster.total_map_slots(),
        tenants,
        fair_makespan: fair_run.makespan,
        fifo_makespan: fifo_run.makespan,
        mean_share_error: fair_run.mean_share_error(),
        share_curve,
        node_local_fraction: fair_run.node_local_fraction(),
        tasks_preempted: fair_run
            .counters
            .get(gmr_mapreduce::counters::Counter::TasksPreempted),
    }
}

/// Renders the report.
pub fn render(b: &SchedulerBench) -> String {
    let rows: Vec<Vec<String>> = b
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.queue.to_string(),
                format!("{:.0}", t.weight),
                t.algorithm.clone(),
                format!("{:.0}", t.submit_at),
                t.jobs.to_string(),
                t.maps.to_string(),
                format!("{:.0}", t.finish_fair),
                format!("{:.0}", t.finish_fifo),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Scheduler: {} tenants on {} nodes ({} map slots)",
            b.tenants.len(),
            b.nodes,
            b.map_slots
        ),
        &[
            "queue", "w", "workload", "submit", "jobs", "maps", "fair fin", "fifo fin",
        ],
        &rows,
    );
    out.push_str(&format!(
        "makespan: fair {:.0}s vs fifo {:.0}s; mean share error {:.3}; \
         node-local maps {:.1}%; preempted {}\n",
        b.fair_makespan,
        b.fifo_makespan,
        b.mean_share_error,
        100.0 * b.node_local_fraction,
        b.tasks_preempted
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meets_the_acceptance_floor() {
        let b = run(&ExperimentScale::quick());
        assert!(b.tenants.len() >= 2, "need at least two tenants");
        assert!(b.fair_makespan > 0.0 && b.fifo_makespan > 0.0);
        // Unfailed cluster with replication 3/4: locality-aware
        // placement keeps at least 80% of maps node-local.
        assert!(
            b.node_local_fraction >= 0.8,
            "node-local fraction {} below 0.8",
            b.node_local_fraction
        );
        assert!(
            !b.share_curve.is_empty(),
            "contending tenants must produce share samples"
        );
        // Fair share serves the late ad-hoc tenant no later than FIFO,
        // which parks it behind both standing workloads.
        let adhoc = b.tenants.iter().find(|t| t.queue == "interactive").unwrap();
        assert!(
            adhoc.finish_fair <= adhoc.finish_fifo + 1e-9,
            "fair share served the ad-hoc tenant later ({} vs {})",
            adhoc.finish_fair,
            adhoc.finish_fifo
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&ExperimentScale::quick());
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"scheduler\""));
        assert!(j.contains("\"share_error_curve\""));
        assert_eq!(j.matches("finish_fair_secs").count(), b.tenants.len());
    }
}
