//! Figure 1: evolution of the centers positioned by MapReduce G-means
//! on a 10-cluster dataset in R².
//!
//! The paper plots three iterations of center positions converging onto
//! the blobs. This reproduction prints, per iteration, the center count
//! and coordinates, plus an ASCII rendering of the final layout (shared
//! with [`crate::experiments::fig4`]).

use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;

use crate::harness::{render_table, stage, ExperimentScale};

/// Result of the Figure 1 run.
pub struct Fig1 {
    /// `(iteration, centers)` snapshots.
    pub snapshots: Vec<(usize, gmr_linalg::Dataset)>,
    /// Final discovered k.
    pub k_found: usize,
    /// Real cluster count (always 10, as in the paper).
    pub k_real: usize,
}

/// Runs the experiment.
pub fn run(scale: &ExperimentScale) -> Fig1 {
    let n = (scale.points / 10).clamp(1_000, 20_000);
    let spec = GaussianMixture::figure_r2(n, scale.seed);
    let (runner, _dfs, truth) = stage(&spec, ClusterConfig::default());
    let result = MRGMeans::new(runner, GMeansConfig::default())
        .run("points.txt")
        .expect("figure 1 run");
    Fig1 {
        snapshots: result
            .reports
            .iter()
            .map(|r| (r.iteration, r.centers_after.clone()))
            .collect(),
        k_found: result.k(),
        k_real: truth.len(),
    }
}

/// Renders the report.
pub fn render(fig: &Fig1) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n== Figure 1: centers per G-means iteration (10 clusters in R²) ==\n\
         paper: k doubles per iteration, converging onto the blobs; final k = 14 for 10 real\n\
         ours:  final k = {} for {} real\n",
        fig.k_found, fig.k_real
    ));
    for (iteration, centers) in &fig.snapshots {
        let rows: Vec<Vec<String>> = centers
            .rows()
            .map(|c| vec![format!("{:7.2}", c[0]), format!("{:7.2}", c[1])])
            .collect();
        out.push_str(&render_table(
            &format!("iteration {iteration} — {} centers", centers.len()),
            &["x", "y"],
            &rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_figure_shape() {
        let fig = run(&ExperimentScale::quick());
        assert_eq!(fig.k_real, 10);
        // Paper finds 14 for 10; allow the usual band.
        assert!(
            (10..=18).contains(&fig.k_found),
            "k_found = {}",
            fig.k_found
        );
        // Center count grows (roughly doubling) across early iterations.
        assert!(fig.snapshots.len() >= 3);
        assert!(fig.snapshots[0].1.len() < fig.snapshots.last().unwrap().1.len());
        let text = render(&fig);
        assert!(text.contains("iteration 1"));
    }
}
