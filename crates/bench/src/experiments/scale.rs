//! Out-of-core scale sweep (`BENCH_scale.json`): 10⁸–10⁹-point
//! workloads under a capped heap, spill-merge vs fully in-memory.
//!
//! The paper's Table 1 datasets hold 10M points; this sweep asks what
//! happens at 100×–1000× that — datasets that dwarf any per-task heap.
//! What governs the out-of-core machinery is not the absolute point
//! count but the **dataset-to-heap ratio**: how many times the shuffle
//! must cycle its sort buffer through spill runs, and how many merge
//! passes the fan-in forces. So each row shrinks the dataset *and* the
//! per-task heap by the same factor, preserving the exact ratio a
//! 100×/320×/1000×-paper dataset would face against the engine's
//! standard 1 GiB task heap. Row `m` runs `points·m/100` real points
//! under a heap of `points·2³⁰/(m·10M)` bytes — at the default scale
//! the 1000× row pushes one million real points through a ~105 KiB
//! heap, a 1600:1 dataset:heap ratio, same as 1.6 TB against 1 GiB.
//!
//! Each row runs k-means twice on bit-identical input: once spilling
//! (capped heap, compressed spill runs, block-compressed DFS) and once
//! fully buffered (uncapped, plain DFS). The centers must match bit
//! for bit — out-of-core execution is an implementation detail — and
//! the row records what the spill path paid: spill volume, merge
//! passes, codec traffic, DFS compression ratio, and the simulated
//! slowdown vs in-memory.

use std::sync::Arc;

use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::{ClusterConfig, OutOfCoreConfig};
use gmr_mapreduce::counters::Counter;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::runtime::JobRunner;

use crate::harness::{render_table, ExperimentScale};

/// Points in one paper dataset (Table 1).
const PAPER_POINTS: f64 = 10_000_000.0;

/// The engine's standard per-task heap the full-size scenario is
/// measured against (the [`ClusterConfig`] default).
const FULL_HEAP: f64 = (1u64 << 30) as f64;

/// Paper-size multiples swept (100× = 10⁹ points at full size).
pub const MULTIPLES: [usize; 3] = [100, 320, 1000];

/// Smallest heap cap a row may use. Below this the fixed per-task
/// residents (sort buffer, merge block buffers, reducer state) no
/// longer fit and tasks genuinely die of heap exhaustion — the sweep
/// measures out-of-core execution, not unrecoverable configurations.
const HEAP_FLOOR: u64 = 64 * 1024;

/// One sweep row.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Paper-size multiple this row models (100 = 10⁹ points).
    pub paper_multiple: usize,
    /// Real points processed.
    pub points: usize,
    /// Raw dataset bytes.
    pub dataset_bytes: u64,
    /// Physical bytes after DFS block compression.
    pub stored_bytes: u64,
    /// Per-task heap cap of the spilling run.
    pub heap_cap: u64,
    /// Spill events.
    pub spills: u64,
    /// Raw bytes written to spill and intermediate merge runs.
    pub spill_bytes: u64,
    /// Multi-pass merges forced by the fan-in bound.
    pub merge_passes: u64,
    /// Raw bytes pushed through the spill codec (compress side).
    pub bytes_compressed: u64,
    /// Raw bytes pulled back through the codec (decompress side).
    pub bytes_decompressed: u64,
    /// Simulated makespan of the spilling run.
    pub spill_secs: f64,
    /// Simulated makespan of the uncapped in-memory run.
    pub memory_secs: f64,
    /// `spill_secs / memory_secs`.
    pub slowdown: f64,
    /// Points per simulated second, spilling.
    pub throughput: f64,
    /// `dataset_bytes / stored_bytes` on the compressed DFS.
    pub dfs_ratio: f64,
}

/// The sweep report.
#[derive(Debug)]
pub struct ScaleBench {
    /// One row per paper-size multiple.
    pub rows: Vec<ScaleRow>,
    /// Worst spilling-vs-memory slowdown across the sweep.
    pub max_slowdown: f64,
}

impl ScaleBench {
    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"scale\",\n");
        s.push_str(&format!("  \"max_slowdown\": {:.4},\n", self.max_slowdown));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"paper_multiple\": {}, \"points\": {}, \
                 \"dataset_bytes\": {}, \"stored_bytes\": {}, \
                 \"heap_cap\": {}, \"spills\": {}, \"spill_bytes\": {}, \
                 \"merge_passes\": {}, \"bytes_compressed\": {}, \
                 \"bytes_decompressed\": {}, \"spill_secs\": {:.3}, \
                 \"memory_secs\": {:.3}, \"slowdown\": {:.4}, \
                 \"throughput_pts_per_sec\": {:.1}, \
                 \"dfs_compression_ratio\": {:.4}}}{}\n",
                r.paper_multiple,
                r.points,
                r.dataset_bytes,
                r.stored_bytes,
                r.heap_cap,
                r.spills,
                r.spill_bytes,
                r.merge_passes,
                r.bytes_compressed,
                r.bytes_decompressed,
                r.spill_secs,
                r.memory_secs,
                r.slowdown,
                r.throughput,
                r.dfs_ratio,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// FNV-1a over center coordinates, for the bit-identity assertion.
fn center_bits(r: &gmeans::mr::MRKMeansResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for row in r.centers.rows() {
        for v in row {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    h
}

/// Runs k-means on a freshly staged DFS and returns the result plus
/// the DFS stats of the run.
fn run_kmeans(
    spec: &GaussianMixture,
    compress_dfs: bool,
    cluster: ClusterConfig,
    k: usize,
    seed: u64,
) -> (gmeans::mr::MRKMeansResult, u64, u64) {
    let dfs = Arc::new(Dfs::with_compression(256 * 1024, compress_dfs));
    spec.generate_to_dfs(&dfs, "points.txt")
        .expect("dataset generation");
    let raw = dfs.len("points.txt").expect("staged");
    let stored = dfs.stored_len("points.txt").expect("staged");
    let runner = JobRunner::new(dfs, cluster).expect("valid cluster");
    let r = MRKMeans::new(runner, k, 3, seed)
        .run("points.txt")
        .expect("k-means run");
    assert!(
        r.failure.is_none(),
        "k-means degraded instead of spilling: {:?}",
        r.failure
    );
    (r, raw, stored)
}

/// Runs the sweep.
pub fn run(scale: &ExperimentScale) -> ScaleBench {
    let mut rows = Vec::new();
    for &multiple in &MULTIPLES {
        // The 100× row runs at the base scale; larger multiples grow
        // the real dataset proportionally so the spill machinery sees
        // genuinely more data, not just a smaller heap.
        let points = scale.points * multiple / MULTIPLES[0];
        let k = scale.k(100).min(points / 50).max(2);
        let spec = GaussianMixture::paper_r10(points, k, scale.seed ^ 0x5ca1e);

        // Preserve the full-size dataset:heap ratio — a `multiple`×
        // paper dataset against the standard 1 GiB task heap.
        let ratio = multiple as f64 * PAPER_POINTS / points as f64;
        let heap_cap = ((FULL_HEAP / ratio) as u64).max(HEAP_FLOOR);
        let ooc = OutOfCoreConfig::enabled()
            .with_sort_buffer((heap_cap / 8).max(4096))
            .with_merge_fan_in(8)
            .with_block_bytes(4 * 1024);
        let capped = ClusterConfig {
            heap_per_task: heap_cap,
            ..ClusterConfig::default().with_out_of_core(ooc)
        };

        let (spilled, raw, stored) = run_kmeans(&spec, true, capped, k, scale.seed);
        let (buffered, _, _) = run_kmeans(&spec, false, ClusterConfig::default(), k, scale.seed);
        assert_eq!(
            center_bits(&spilled),
            center_bits(&buffered),
            "{multiple}x: spill-merge centers diverged from in-memory"
        );
        assert_eq!(
            spilled.counts, buffered.counts,
            "{multiple}x: counts diverged"
        );

        let (spill_secs, memory_secs) = (spilled.simulated_secs, buffered.simulated_secs);
        rows.push(ScaleRow {
            paper_multiple: multiple,
            points,
            dataset_bytes: raw,
            stored_bytes: stored,
            heap_cap,
            spills: spilled.counters.get(Counter::ShuffleSpills),
            spill_bytes: spilled.counters.get(Counter::ShuffleSpillBytes),
            merge_passes: spilled.counters.get(Counter::ShuffleMergePasses),
            bytes_compressed: spilled.counters.get(Counter::BytesCompressed),
            bytes_decompressed: spilled.counters.get(Counter::BytesDecompressed),
            spill_secs,
            memory_secs,
            slowdown: spill_secs / memory_secs,
            throughput: points as f64 / spill_secs,
            dfs_ratio: raw as f64 / stored as f64,
        });
    }
    let max_slowdown = rows.iter().map(|r| r.slowdown).fold(0.0, f64::max);
    ScaleBench { rows, max_slowdown }
}

/// Panics unless spilling stayed within `budget`× of the in-memory
/// makespan everywhere and every row actually spilled — the CI smoke
/// guard (`repro scale --quick`).
pub fn assert_within_budget(b: &ScaleBench, budget: f64) {
    for r in &b.rows {
        assert!(
            r.spills > 0,
            "{}x: a capped heap this small must spill",
            r.paper_multiple
        );
        assert!(
            r.slowdown <= budget,
            "{}x: spilling ran {:.2}x slower than in-memory (budget {budget}x)",
            r.paper_multiple,
            r.slowdown
        );
    }
}

/// Renders the report.
pub fn render(b: &ScaleBench) -> String {
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x", r.paper_multiple),
                r.points.to_string(),
                format!("{:.1}", r.dataset_bytes as f64 / 1024.0 / 1024.0),
                format!("{}", r.heap_cap / 1024),
                r.spills.to_string(),
                format!("{:.1}", r.spill_bytes as f64 / 1024.0 / 1024.0),
                r.merge_passes.to_string(),
                format!("{:.2}", r.dfs_ratio),
                format!("{:.0}", r.spill_secs),
                format!("{:.0}", r.memory_secs),
                format!("{:.2}", r.slowdown),
            ]
        })
        .collect();
    let mut out = render_table(
        "Out-of-core scale sweep: spill-merge under paper-ratio heap caps",
        &[
            "paper",
            "points",
            "MiB",
            "heap KiB",
            "spills",
            "spilled MiB",
            "merges",
            "dfs ratio",
            "spill s",
            "mem s",
            "slow",
        ],
        &rows,
    );
    out.push_str(&format!(
        "all rows bit-identical to in-memory; worst slowdown {:.2}x\n",
        b.max_slowdown
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meets_the_acceptance_floor() {
        let b = run(&ExperimentScale::quick());
        assert_eq!(b.rows.len(), MULTIPLES.len());
        for r in &b.rows {
            assert!(r.spills > 0, "{}x row did not spill", r.paper_multiple);
            assert!(
                r.merge_passes > 0,
                "{}x row never hit the merge fan-in",
                r.paper_multiple
            );
            assert!(
                r.bytes_compressed > 0 && r.bytes_decompressed > 0,
                "{}x row skipped the spill codec",
                r.paper_multiple
            );
            assert!(
                r.dfs_ratio > 1.0,
                "{}x: DFS block compression did not shrink the dataset",
                r.paper_multiple
            );
        }
        // Rows grow tenfold in real data; spill volume must follow.
        assert!(b.rows[2].spill_bytes > b.rows[0].spill_bytes);
        // The CI smoke guard itself.
        assert_within_budget(&b, 1.3);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&ExperimentScale::quick());
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"scale\""));
        assert!(j.contains("\"max_slowdown\""));
        assert_eq!(j.matches("\"paper_multiple\":").count(), b.rows.len());
    }
}
