//! Table 3: clustering quality — average distance between points and
//! their centers, G-means vs multi-k-means at the same k.
//!
//! The paper's claim: because G-means adds centers progressively, where
//! they are needed, it avoids local minima and lands ≈10% better than
//! multi-k-means run at the very k G-means discovered (10 Lloyd
//! iterations from random initialization).

use gmeans::mr::MultiKMeans;
use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;

use crate::harness::{reload, render_table, stage, ExperimentScale};

/// Paper reference: (k_real, k_found, G-means avg, multi-k avg).
pub const PAPER_TABLE3: [(usize, usize, f64, f64); 3] = [
    (100, 150, 3.34, 3.71),
    (200, 279, 3.33, 3.60),
    (400, 639, 3.23, 3.39),
];

/// One row of the quality comparison.
pub struct Table3Row {
    /// Real clusters in the dataset.
    pub k_real: usize,
    /// Clusters discovered by G-means.
    pub k_found: usize,
    /// Average point-to-center distance with G-means centers.
    pub gmeans_avg: f64,
    /// Average distance with multi-k-means centers at k = k_found.
    pub multik_avg: f64,
}

/// Runs the comparison.
pub fn run(scale: &ExperimentScale) -> Vec<Table3Row> {
    PAPER_TABLE3
        .iter()
        .map(|&(paper_k, _, _, _)| {
            let k = scale.k(paper_k);
            let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed + paper_k as u64);
            let (runner, dfs, _truth) = stage(&spec, ClusterConfig::default());
            let g = MRGMeans::new(runner, GMeansConfig::default())
                .run("points.txt")
                .expect("gmeans run");
            let data = reload(&dfs, 10);
            let gmeans_avg = average_distance(&data, &g.centers);

            let runner = gmr_mapreduce::runtime::JobRunner::new(dfs, ClusterConfig::default())
                .expect("cluster");
            // "we let the algorithm run 10 iterations, which is enough
            // to find a stable solution" — at k = k_found.
            let m = MultiKMeans::new(runner, g.k(), g.k(), 1, 10, scale.seed)
                .run("points.txt")
                .expect("multik run");
            let multik_avg = average_distance(&data, &m.models[0].centers);
            Table3Row {
                k_real: k,
                k_found: g.k(),
                gmeans_avg,
                multik_avg,
            }
        })
        .collect()
}

/// Renders the rows beside the paper's.
pub fn render(rows: &[Table3Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(&PAPER_TABLE3)
        .map(|(r, &(pk, pfound, pg, pm))| {
            vec![
                format!("d{pk}"),
                r.k_real.to_string(),
                r.k_found.to_string(),
                format!("{:.3}", r.gmeans_avg),
                format!("{:.3}", r.multik_avg),
                format!("{:+.1}%", 100.0 * (r.multik_avg / r.gmeans_avg - 1.0)),
                format!("{pfound} / {pg} / {pm}"),
            ]
        })
        .collect();
    let mut out = render_table(
        "Table 3: average point-to-center distance (lower is better)",
        &[
            "dataset",
            "k_real",
            "k_found",
            "G-means",
            "multi-k",
            "multi-k worse by",
            "paper (k_found/G/multi)",
        ],
        &body,
    );
    out.push_str("paper: G-means consistently better by ≈10% (progressive center placement avoids local minima)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_quality_comparison_favors_gmeans() {
        let rows = run(&ExperimentScale::quick());
        assert_eq!(rows.len(), 3);
        let mut wins = 0;
        for r in &rows {
            assert!(r.k_found >= r.k_real / 2);
            assert!(r.gmeans_avg > 0.0 && r.multik_avg > 0.0);
            if r.gmeans_avg <= r.multik_avg * 1.001 {
                wins += 1;
            }
        }
        // G-means should win on most datasets (paper: all three).
        assert!(wins >= 2, "G-means won only {wins}/3 quality comparisons");
    }
}
