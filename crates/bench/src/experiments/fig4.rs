//! Figure 4: the local-minimum illustration.
//!
//! The paper shows a 10-cluster R² dataset where G-means places 14
//! centers but covers every blob, while multi-k-means with the *correct*
//! k = 10 drops two centers into one blob and leaves another blob
//! shared — a local minimum with visibly worse average distance. This
//! reproduction runs both, reports per-blob center counts and renders
//! an ASCII scatter of the outcome.

use gmeans::mr::MultiKMeans;
use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_linalg::{euclidean, Dataset};
use gmr_mapreduce::cluster::ClusterConfig;

use crate::harness::{reload, stage, ExperimentScale};

/// Result of the Figure 4 comparison.
pub struct Fig4 {
    /// Ground-truth blob centers (10 of them).
    pub truth: Dataset,
    /// G-means result.
    pub gmeans_centers: Dataset,
    /// Multi-k-means result at k = 10.
    pub multik_centers: Dataset,
    /// Average distance under each.
    pub gmeans_avg: f64,
    /// Average distance under multi-k.
    pub multik_avg: f64,
    /// Centers within 3σ of each true blob: (gmeans, multik) per blob.
    pub per_blob: Vec<(usize, usize)>,
}

/// Runs the comparison. The seed is chosen free-running; across seeds
/// multi-k with random init frequently lands in the paper's
/// double-center local minimum.
pub fn run(scale: &ExperimentScale) -> Fig4 {
    let n = (scale.points / 10).clamp(1_000, 20_000);
    let spec = GaussianMixture::figure_r2(n, scale.seed + 4);
    let (runner, dfs, truth) = stage(&spec, ClusterConfig::default());
    let g = MRGMeans::new(runner, GMeansConfig::default())
        .run("points.txt")
        .expect("gmeans run");
    let data = reload(&dfs, 2);
    let gmeans_avg = average_distance(&data, &g.centers);

    let runner =
        gmr_mapreduce::runtime::JobRunner::new(dfs, ClusterConfig::default()).expect("cluster");
    let m = MultiKMeans::new(runner, 10, 10, 1, 10, scale.seed + 4)
        .run("points.txt")
        .expect("multik run");
    let multik_centers = m.models[0].centers.clone();
    let multik_avg = average_distance(&data, &multik_centers);

    let sigma3 = 3.0 * spec.stddev;
    let per_blob = truth
        .rows()
        .map(|t| {
            let close = |cs: &Dataset| cs.rows().filter(|c| euclidean(c, t) < sigma3).count();
            (close(&g.centers), close(&multik_centers))
        })
        .collect();

    Fig4 {
        truth,
        gmeans_centers: g.centers,
        multik_centers,
        gmeans_avg,
        multik_avg,
        per_blob,
    }
}

/// ASCII scatter of centers over the 100×100 box: `.` true blob,
/// `G`/`M`/`B` = G-means / multi-k / both nearby.
pub fn ascii_plot(fig: &Fig4) -> String {
    const W: usize = 50;
    const H: usize = 25;
    let mut grid = vec![vec![' '; W]; H];
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, ch: char| {
        let col = ((x / 100.0) * (W as f64 - 1.0))
            .round()
            .clamp(0.0, W as f64 - 1.0) as usize;
        let row = (H as f64 - 1.0 - (y / 100.0) * (H as f64 - 1.0))
            .round()
            .clamp(0.0, H as f64 - 1.0) as usize;
        let cell = &mut grid[row][col];
        *cell = match (*cell, ch) {
            (' ', c) | ('.', c) => c,
            ('G', 'M') | ('M', 'G') => 'B',
            (prev, _) => prev,
        };
    };
    for t in fig.truth.rows() {
        place(&mut grid, t[0], t[1], '.');
    }
    for c in fig.gmeans_centers.rows() {
        place(&mut grid, c[0], c[1], 'G');
    }
    for c in fig.multik_centers.rows() {
        place(&mut grid, c[0], c[1], 'M');
    }
    let mut out = String::new();
    out.push_str("  . true blob   G g-means center   M multi-k center   B both\n");
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Renders the report.
pub fn render(fig: &Fig4) -> String {
    let mut out = format!(
        "\n== Figure 4: G-means vs multi-k-means on 10 clusters in R² ==\n\
         G-means: {} centers, avg distance {:.3}\n\
         multi-k (k = 10): {} centers, avg distance {:.3}\n",
        fig.gmeans_centers.len(),
        fig.gmeans_avg,
        fig.multik_centers.len(),
        fig.multik_avg
    );
    out.push_str("per-blob center counts (gmeans/multik): ");
    for (g, m) in &fig.per_blob {
        out.push_str(&format!("{g}/{m} "));
    }
    out.push('\n');
    let starved = fig.per_blob.iter().filter(|(_, m)| *m == 0).count();
    let doubled = fig.per_blob.iter().filter(|(_, m)| *m >= 2).count();
    out.push_str(&format!(
        "multi-k local minimum: {starved} blob(s) without a center, {doubled} blob(s) with 2+\n\
         paper: two multi-k centers landed in the cluster near (80, 80), one blob left shared\n"
    ));
    out.push_str(&ascii_plot(fig));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig4_covers_all_blobs_with_gmeans() {
        let fig = run(&ExperimentScale::quick());
        assert_eq!(fig.truth.len(), 10);
        // The paper's headline: G-means covers every blob.
        for (i, (g, _)) in fig.per_blob.iter().enumerate() {
            assert!(*g >= 1, "blob {i} has no G-means center");
        }
        // Quality: G-means no worse than multi-k (usually strictly
        // better when multi-k hits the local minimum).
        assert!(fig.gmeans_avg <= fig.multik_avg * 1.05);
        let plot = ascii_plot(&fig);
        assert!(plot.contains('G'));
        assert!(plot.contains('M') || plot.contains('B'));
    }
}
