//! One module per artifact of the paper's evaluation (§5).
//!
//! | module | artifact | paper content |
//! |---|---|---|
//! | [`fig1`] | Figure 1 | centers placed by successive G-means iterations (10 clusters, R²) |
//! | [`fig2`] | Figure 2 | reducer heap needed vs points per reducer; 64 B/pt regression |
//! | [`times`] | Tables 1–2, Figure 3 | G-means vs multi-k-means running times vs k |
//! | [`table3`] | Table 3 | clustering quality (average point–center distance) |
//! | [`fig4`] | Figure 4 | the local-minimum illustration (14 vs 10 centers) |
//! | [`table4`] | Table 4, Figure 5 | node-count scalability |
//! | [`ablations`] | — | design-choice ablations DESIGN.md calls out |
//! | [`kernels`] | — | nearest-center kernel throughput trajectory (`BENCH_kernels.json`) |
//! | [`scheduler`] | — | multi-tenant fair-share vs FIFO arbitration (`BENCH_scheduler.json`) |
//! | [`elastic`] | — | elastic membership: join speedup, revocation cost (`BENCH_elastic.json`) |
//! | [`scale`] | — | out-of-core spill-merge at 100×–1000× paper scale (`BENCH_scale.json`) |
//! | [`chaos`] | — | composite storm intensity vs makespan, zero answer drift (`BENCH_chaos.json`) |

pub mod ablations;
pub mod chaos;
pub mod elastic;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod kernels;
pub mod scale;
pub mod scheduler;
pub mod table3;
pub mod table4;
pub mod times;
