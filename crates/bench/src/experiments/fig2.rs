//! Figure 2: heap memory required by the `TestClusters` reducer as a
//! function of the points it must buffer.
//!
//! The paper varies the dataset size and the JVM heap, watches which
//! jobs die with "Java heap space", and fits `heap(MB) ≈ 64·x − 42.67`
//! through the success/failure boundary (x in millions of points) — the
//! 64 B/pt slope that calibrates the §3.2 strategy switch. This
//! reproduction performs the same sweep against the engine's simulated
//! heap: for each dataset size, the minimal surviving heap is found by
//! bisection over real job runs, and the same least-squares fit is
//! applied.

use std::sync::Arc;

use gmeans::mr::{CenterSet, SplitTestSpec, TestClustersJob};
use gmr_datagen::{ClusterWeights, GaussianMixture};
use gmr_linalg::{LinearFit, SegmentProjector};
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::job::JobConfig;
use gmr_mapreduce::memory::BYTES_PER_PROJECTION;
use gmr_mapreduce::runtime::JobRunner;
use gmr_mapreduce::Error;
use gmr_stats::AndersonDarling;

use crate::harness::{render_table, ExperimentScale};

/// One sweep point.
pub struct Fig2Row {
    /// Points the single reducer must buffer.
    pub points: usize,
    /// Smallest heap (bytes) with which the job succeeded.
    pub min_heap_bytes: u64,
    /// Largest probed heap with which the job failed.
    pub max_failed_heap_bytes: u64,
}

/// Result of the Figure 2 sweep.
pub struct Fig2 {
    /// Sweep rows, ascending in points.
    pub rows: Vec<Fig2Row>,
    /// Least-squares fit of min-heap (bytes) against points.
    pub fit: LinearFit,
}

/// Runs the sweep. Dataset sizes scale with `scale.points` (the paper
/// uses 4–16 × 10⁶ points; the default scale probes 4–16 × `points`/50).
pub fn run(scale: &ExperimentScale) -> Fig2 {
    let unit = (scale.points / 50).max(200);
    let mut rows = Vec::new();
    for mult in [4usize, 6, 8, 10, 12, 14, 16] {
        let n = mult * unit;
        rows.push(probe(n, scale.seed));
    }
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.points as f64, r.min_heap_bytes as f64))
        .collect();
    let fit = LinearFit::fit(&pts).expect("≥2 sweep points");
    Fig2 { rows, fit }
}

/// Finds the minimal heap for one dataset size by bisection.
fn probe(n: usize, seed: u64) -> Fig2Row {
    // Single Gaussian cluster: during the first iteration every point
    // lands on one reducer, exactly the paper's setup.
    let spec = GaussianMixture {
        n_points: n,
        dim: 2,
        n_clusters: 1,
        box_min: 0.0,
        box_max: 100.0,
        stddev: 3.0,
        min_separation_sigmas: 0.0,
        seed,
        weights: ClusterWeights::Balanced,
    };
    let dfs = Arc::new(Dfs::new(256 * 1024));
    let truth = spec.generate_to_dfs(&dfs, "points.txt").expect("dataset");
    let center = truth.row(0);
    let mut parents = CenterSet::new(2);
    parents.push(0, center);
    let projector =
        SegmentProjector::new(&[center[0] - 3.0, center[1]], &[center[0] + 3.0, center[1]]);

    let attempt = |heap: u64| -> bool {
        let cluster = ClusterConfig {
            heap_per_task: heap,
            ..ClusterConfig::default()
        };
        let runner = JobRunner::new(Arc::clone(&dfs), cluster).expect("cluster");
        let spec = SplitTestSpec::new(
            Arc::new(parents.clone()),
            Arc::new(vec![Some(projector.clone())]),
            AndersonDarling::default(),
        );
        match runner.run(
            &TestClustersJob::new(spec),
            "points.txt",
            &JobConfig::with_reducers(1),
        ) {
            Ok(_) => true,
            Err(Error::HeapSpace { .. }) => false,
            Err(other) => panic!("unexpected failure: {other}"),
        }
    };

    // Bisect between 1 byte (fails) and a safely sufficient heap.
    let mut lo = 1u64; // fails
    let mut hi = (n as u64 + 16) * BYTES_PER_PROJECTION * 2; // succeeds
    assert!(attempt(hi), "upper probe must succeed");
    assert!(!attempt(lo), "lower probe must fail");
    while hi - lo > BYTES_PER_PROJECTION {
        let mid = lo + (hi - lo) / 2;
        if attempt(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Fig2Row {
        points: n,
        min_heap_bytes: hi,
        max_failed_heap_bytes: lo,
    }
}

/// Renders the report.
pub fn render(fig: &Fig2) -> String {
    let rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.points.to_string(),
                format!("{:.3}", r.min_heap_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", r.min_heap_bytes as f64 / r.points as f64),
            ]
        })
        .collect();
    let mut out = render_table(
        "Figure 2: heap required by the TestClusters reducer",
        &["points", "min heap (MiB)", "bytes/point"],
        &rows,
    );
    out.push_str(&format!(
        "least-squares fit: heap ≈ {:.2} B/point × points {} {:.0} B   (R² = {:.4})\n\
         paper:             heap ≈ 64 B/point (fit: 64·x − 42.67 MB over x millions of points)\n",
        fig.fit.slope,
        if fig.fit.intercept >= 0.0 { "+" } else { "−" },
        fig.fit.intercept.abs(),
        fig.fit.r_squared
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_slope_is_the_papers_64_bytes_per_point() {
        let fig = run(&ExperimentScale::quick());
        assert_eq!(fig.rows.len(), 7);
        // The ledger charges exactly 64 B per buffered projection, so
        // the fitted slope must land on it.
        assert!(
            (fig.fit.slope - BYTES_PER_PROJECTION as f64).abs() < 1.0,
            "slope {} B/pt",
            fig.fit.slope
        );
        assert!(fig.fit.r_squared > 0.999);
        for r in &fig.rows {
            assert!(r.min_heap_bytes > r.max_failed_heap_bytes);
            // Boundary within a point's worth of the exact requirement.
            let exact = r.points as u64 * BYTES_PER_PROJECTION;
            assert!(
                r.min_heap_bytes >= exact && r.min_heap_bytes <= exact + 2 * BYTES_PER_PROJECTION,
                "points {}: min heap {} vs exact {exact}",
                r.points,
                r.min_heap_bytes
            );
        }
    }
}
