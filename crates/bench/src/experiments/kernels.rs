//! Nearest-center kernel benchmark: naive scan vs k-d tree vs the
//! blocked kernel vs blocked + triangle pruning.
//!
//! This is the PR-over-PR perf trajectory for the hot path the paper's
//! §4 cost model counts. The workload is the acceptance workload of the
//! kernel work: a d = 2 Gaussian mixture with k ≥ 32 centers — low
//! dimension and many centers is where the paper's own evaluation lives
//! (R² illustrations, k up to 1600) and where center pruning pays.
//!
//! Every backend must produce *identical* assignments; the benchmark
//! proves it by running a short Lloyd refinement per backend and
//! requiring bit-identical final centers, then measures assignment
//! throughput (points/sec), distance evaluations, and wall time. The
//! numbers are rendered as a table and serialized to
//! `BENCH_kernels.json` by the `repro` binary so the trajectory
//! accumulates across PRs.

use std::time::Instant;

use gmeans::mr::CenterSet;
use gmr_datagen::{ClusterWeights, GaussianMixture};
use gmr_linalg::{nearest_center_flat, squared_norms, Dataset};

use crate::harness::{render_table, ExperimentScale};

/// Number of clusters of the benchmark workload (the issue's `k ≥ 32`).
const K: usize = 128;
/// Lloyd iterations of the identity check.
const LLOYD_ITERS: usize = 5;
/// Points handed to `nearest_block` per call, mirroring the runtime's
/// cached map-phase block size.
const BLOCK_POINTS: usize = 256;

/// One measured backend.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Backend label.
    pub name: &'static str,
    /// Assignment throughput over the full dataset.
    pub points_per_sec: f64,
    /// Distance evaluations charged for one full sweep.
    pub distance_evals: u64,
    /// Wall time of one full sweep, in seconds.
    pub wall_secs: f64,
}

/// The benchmark report.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Points in the workload.
    pub points: usize,
    /// Centers in the workload.
    pub k: usize,
    /// Dimensionality of the workload.
    pub dim: usize,
    /// One row per backend, naive first.
    pub rows: Vec<KernelRow>,
    /// Whether all backends produced bit-identical final Lloyd centers.
    pub identical_centers: bool,
}

impl KernelBench {
    /// Speedup of the named backend over the naive scan (points/sec).
    pub fn speedup(&self, name: &str) -> f64 {
        let naive = self.rows[0].points_per_sec;
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map_or(0.0, |r| r.points_per_sec / naive)
    }

    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"kernels\",\n");
        s.push_str(&format!("  \"points\": {},\n", self.points));
        s.push_str(&format!("  \"k\": {},\n", self.k));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!(
            "  \"identical_final_centers\": {},\n",
            self.identical_centers
        ));
        s.push_str("  \"backends\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"points_per_sec\": {:.1}, \"distance_evals\": {}, \
                 \"wall_secs\": {:.6}, \"speedup_vs_naive\": {:.3}}}{}\n",
                r.name,
                r.points_per_sec,
                r.distance_evals,
                r.wall_secs,
                r.points_per_sec / self.rows[0].points_per_sec,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// One assignment sweep of a backend: fills `assign` and returns the
/// distance evaluations charged.
fn sweep(backend: &Backend, data: &Dataset, norms: &[f64], assign: &mut Vec<usize>) -> u64 {
    assign.clear();
    let dim = data.dim();
    match backend {
        Backend::Naive(set) => {
            let flat = set.to_dataset();
            let centers = flat.flat();
            for p in data.rows() {
                let (idx, _) = nearest_center_flat(p, centers, dim).expect("non-empty centers");
                assign.push(idx);
            }
            (data.len() * set.len()) as u64
        }
        Backend::Block(set) => {
            let mut evals = 0u64;
            let flat = data.flat();
            for (bi, block) in flat.chunks(BLOCK_POINTS * dim).enumerate() {
                let base = bi * BLOCK_POINTS;
                let rows = block.len() / dim;
                for (idx, _, _, e) in set.nearest_block(block, &norms[base..base + rows]) {
                    assign.push(idx);
                    evals += e;
                }
            }
            evals
        }
    }
}

/// A backend under test: the naive scalar scan, or a [`CenterSet`]
/// (optionally accelerated) queried through the engine's block path.
enum Backend {
    Naive(CenterSet),
    Block(CenterSet),
}

/// Builds a [`Backend`] around a fresh copy of the centers.
type BackendFactory = Box<dyn Fn(CenterSet) -> Backend>;

fn centers_from(data: &Dataset, k: usize) -> CenterSet {
    // Deterministic spread-out init: stride through the dataset.
    let stride = (data.len() / k).max(1);
    let mut set = CenterSet::new(data.dim());
    for i in 0..k {
        set.push(i as i64, data.row((i * stride) % data.len()));
    }
    set
}

/// Runs a short Lloyd refinement with the backend's assignments and
/// returns the final flat center buffer (for the bit-identity check).
fn lloyd(backend_of: impl Fn(CenterSet) -> Backend, data: &Dataset, norms: &[f64]) -> Vec<f64> {
    let dim = data.dim();
    let mut set = centers_from(data, K);
    let mut assign = Vec::with_capacity(data.len());
    for _ in 0..LLOYD_ITERS {
        let backend = backend_of(set.clone());
        sweep(&backend, data, norms, &mut assign);
        let mut sums = vec![0.0f64; K * dim];
        let mut counts = vec![0u64; K];
        for (p, &a) in data.rows().zip(&assign) {
            counts[a] += 1;
            for (s, x) in sums[a * dim..(a + 1) * dim].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut next = CenterSet::new(dim);
        for j in 0..K {
            if counts[j] > 0 {
                let inv = 1.0 / counts[j] as f64;
                let mean: Vec<f64> = sums[j * dim..(j + 1) * dim]
                    .iter()
                    .map(|s| s * inv)
                    .collect();
                next.push(j as i64, &mean);
            } else {
                next.push(j as i64, set.coords(j));
            }
        }
        set = next;
    }
    set.to_dataset().flat().to_vec()
}

/// Runs the benchmark.
pub fn run(scale: &ExperimentScale) -> KernelBench {
    let spec = GaussianMixture {
        n_points: scale.points,
        dim: 2,
        n_clusters: K,
        box_min: 0.0,
        box_max: 1000.0,
        stddev: 4.0,
        min_separation_sigmas: 3.0,
        seed: scale.seed ^ 0x6b65,
        weights: ClusterWeights::Balanced,
    };
    let data = spec.generate().expect("dataset generation").points;
    let norms = squared_norms(data.flat(), data.dim());
    let base = centers_from(&data, K);

    let backends: Vec<(&'static str, BackendFactory)> = vec![
        ("naive", Box::new(Backend::Naive)),
        (
            "kd",
            Box::new(|s: CenterSet| Backend::Block(s.with_kd_index())),
        ),
        ("blocked", Box::new(Backend::Block)),
        (
            "blocked+pruned",
            Box::new(|s: CenterSet| Backend::Block(s.with_triangle_prune())),
        ),
    ];

    // Identity: every backend's short Lloyd run ends bit-identically.
    let finals: Vec<Vec<f64>> = backends
        .iter()
        .map(|(_, mk)| lloyd(mk, &data, &norms))
        .collect();
    let identical_centers = finals.iter().all(|f| {
        f.len() == finals[0].len()
            && f.iter()
                .zip(&finals[0])
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });

    // Throughput: repeat the sweep until ≥ ~2M point-assignments so the
    // quick scale still measures something (capped so debug-mode smoke
    // tests stay fast).
    let reps = (2_000_000 / data.len().max(1)).clamp(1, 64);
    let mut rows = Vec::new();
    let mut assign = Vec::with_capacity(data.len());
    for (name, mk) in &backends {
        let backend = mk(base.clone());
        // Warm-up (also the eval count; identical across reps).
        let evals = sweep(&backend, &data, &norms, &mut assign);
        // Best-of-reps: the minimum sweep time is the least noisy
        // estimate of the kernel's cost on a shared machine.
        let mut wall = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            sweep(&backend, &data, &norms, &mut assign);
            wall = wall.min(start.elapsed().as_secs_f64());
        }
        rows.push(KernelRow {
            name,
            points_per_sec: data.len() as f64 / wall,
            distance_evals: evals,
            wall_secs: wall,
        });
    }

    KernelBench {
        points: data.len(),
        k: K,
        dim: 2,
        rows,
        identical_centers,
    }
}

/// Renders the report.
pub fn render(b: &KernelBench) -> String {
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.0}", r.points_per_sec),
                format!("{:.2}x", r.points_per_sec / b.rows[0].points_per_sec),
                r.distance_evals.to_string(),
                format!("{:.4}", r.wall_secs),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Nearest-center kernels — {} points, d={}, k={}",
            b.points, b.dim, b.k
        ),
        &[
            "backend",
            "points/sec",
            "speedup",
            "distance evals",
            "wall secs",
        ],
        &rows,
    );
    out.push_str(&format!(
        "final Lloyd centers identical across backends: {}\n",
        b.identical_centers
    ));
    out
}

/// Regression guard: the blocked kernel must not run slower than the
/// naive scan it wraps (it once did at d = 2, where the bounds
/// decomposition costs more than it saves). Allows a small
/// timing-noise slack for shared machines, and only measures
/// optimized builds — unoptimized timing says nothing about the
/// shipped kernel. The CI release smoke run (`repro kernels --quick`)
/// enforces it on every push.
///
/// # Panics
/// Panics when the blocked backend falls below 90% of the naive
/// backend's throughput in an optimized build.
pub fn assert_no_regression(b: &KernelBench) {
    if cfg!(debug_assertions) {
        return;
    }
    let naive = &b.rows[0];
    let blocked = b
        .rows
        .iter()
        .find(|r| r.name == "blocked")
        .expect("blocked backend row");
    assert!(
        blocked.points_per_sec >= 0.9 * naive.points_per_sec,
        "blocked kernel regressed below naive: {:.0} vs {:.0} points/sec",
        blocked.points_per_sec,
        naive.points_per_sec
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_and_prune_reduces_evals() {
        let b = run(&ExperimentScale::quick());
        assert!(b.identical_centers, "backends diverged");
        assert_eq!(b.rows.len(), 4);
        let naive = &b.rows[0];
        assert_eq!(naive.distance_evals, (b.points * b.k) as u64);
        // The blocked kernel charges exactly the naive count (the
        // determinism/cost contract); pruning and k-d charge fewer.
        let blocked = b.rows.iter().find(|r| r.name == "blocked").unwrap();
        assert_eq!(blocked.distance_evals, naive.distance_evals);
        let pruned = b.rows.iter().find(|r| r.name == "blocked+pruned").unwrap();
        assert!(pruned.distance_evals < naive.distance_evals / 2);
        let kd = b.rows.iter().find(|r| r.name == "kd").unwrap();
        assert!(kd.distance_evals < naive.distance_evals);
        assert_no_regression(&b);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run(&ExperimentScale::quick());
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"kernels\""));
        assert!(j.contains("\"blocked+pruned\""));
        assert_eq!(j.matches("points_per_sec").count(), 4);
    }
}
