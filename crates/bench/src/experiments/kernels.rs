//! Nearest-center kernel benchmark: a d × k sweep of every backend.
//!
//! This is the PR-over-PR perf trajectory for the hot path the paper's
//! §4 cost model counts. Where earlier revisions measured one cell
//! (d = 2, k = 128), this one sweeps d ∈ {2, 8, 32, 128} ×
//! k ∈ {128, 512, 4096} so the auto-dispatch policy in
//! [`KernelBackend::resolve`] is tuned from — and guarded by — the same
//! grid it routes on. Per cell the sweep measures:
//!
//! * `naive` — the scalar flat scan (the paper's cost-model unit),
//! * `blocked` — the SIMD bounds-then-exact tile kernel,
//! * `blocked-mt` — the same kernel split over deterministic parallel
//!   tiles (4 workers, byte-identical merge),
//! * `kd` — the opt-in k-d index (charges *actual* evaluations),
//! * `pruned` — the opt-in triangle pruner (actual evaluations),
//! * `default` — [`KernelBackend::Auto`], i.e. exactly what every
//!   distance-heavy mapper gets from `EngineCtx::prepare`; the cell
//!   records which concrete backend the policy picked.
//!
//! Every backend must produce *identical* assignments; each cell proves
//! it by running a short Lloyd refinement per backend and requiring
//! bit-identical final centers, then measures assignment throughput
//! (points/sec), charged distance evaluations, and wall time. The sweep
//! is rendered as a table and serialized to `BENCH_kernels.json` by the
//! `repro` binary so the trajectory accumulates across PRs.

use std::time::Instant;

use gmeans::mr::{CenterSet, KernelBackend};
use gmr_datagen::{ClusterWeights, GaussianMixture};
use gmr_linalg::{nearest_center_flat, squared_norms, Dataset};

use crate::harness::{render_table, ExperimentScale};

/// The sweep grid: every (dim, k) cell measured by `repro kernels`.
pub const CELLS: [(usize, usize); 12] = [
    (2, 128),
    (2, 512),
    (2, 4096),
    (8, 128),
    (8, 512),
    (8, 4096),
    (32, 128),
    (32, 512),
    (32, 4096),
    (128, 128),
    (128, 512),
    (128, 4096),
];

/// Points handed to `nearest_block` per call for single-threaded
/// backends, mirroring the runtime's cached map-phase block size.
const BLOCK_POINTS: usize = 256;
/// Block size for the multi-tile backend: large enough that one
/// scoped-thread spawn amortizes over many tiles.
const MT_BLOCK_POINTS: usize = 8192;
/// Workers of the `blocked-mt` backend.
const MT_WORKERS: usize = 4;

/// One measured backend within a cell.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Backend label.
    pub name: &'static str,
    /// Assignment throughput over the cell's dataset.
    pub points_per_sec: f64,
    /// Distance evaluations charged for one full sweep.
    pub distance_evals: u64,
    /// Wall time of one full sweep, in seconds.
    pub wall_secs: f64,
}

/// One (dim, k) cell of the sweep.
#[derive(Clone, Debug)]
pub struct KernelCell {
    /// Dimensionality of the cell's workload.
    pub dim: usize,
    /// Centers in the cell's workload.
    pub k: usize,
    /// Points in the cell's workload.
    pub points: usize,
    /// The concrete backend [`KernelBackend::Auto`] resolved to here.
    pub auto_backend: &'static str,
    /// One row per backend, naive first.
    pub rows: Vec<KernelRow>,
    /// Whether all backends produced bit-identical final Lloyd centers.
    pub identical_centers: bool,
}

impl KernelCell {
    /// Speedup of the named backend over the naive scan (points/sec).
    pub fn speedup(&self, name: &str) -> f64 {
        let naive = self.rows[0].points_per_sec;
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map_or(0.0, |r| r.points_per_sec / naive)
    }
}

/// The benchmark report: the whole d × k sweep.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// One entry per measured (dim, k) cell.
    pub cells: Vec<KernelCell>,
    /// Whether *every* cell's backends ended bit-identically.
    pub identical_centers: bool,
}

impl KernelBench {
    /// The cell measured at `(dim, k)`, if the sweep ran it.
    pub fn cell(&self, dim: usize, k: usize) -> Option<&KernelCell> {
        self.cells.iter().find(|c| c.dim == dim && c.k == k)
    }

    /// Serializes the report as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"kernels\",\n");
        s.push_str(&format!(
            "  \"identical_final_centers\": {},\n",
            self.identical_centers
        ));
        s.push_str("  \"cells\": [\n");
        for (ci, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"dim\": {}, \"k\": {}, \"points\": {}, \"auto_backend\": \"{}\", \
                 \"identical_final_centers\": {},\n",
                c.dim, c.k, c.points, c.auto_backend, c.identical_centers
            ));
            s.push_str("     \"backends\": [\n");
            for (i, r) in c.rows.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"name\": \"{}\", \"points_per_sec\": {:.1}, \"distance_evals\": {}, \
                     \"wall_secs\": {:.6}, \"speedup_vs_naive\": {:.3}}}{}\n",
                    r.name,
                    r.points_per_sec,
                    r.distance_evals,
                    r.wall_secs,
                    r.points_per_sec / c.rows[0].points_per_sec,
                    if i + 1 < c.rows.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "     ]}}{}\n",
                if ci + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// A backend under test: the naive scalar scan, or a [`CenterSet`]
/// (with some backend attached) queried through the engine's block
/// path, in `block_points`-sized chunks.
enum Backend {
    Naive(CenterSet),
    Block { set: CenterSet, block_points: usize },
}

/// Builds a [`Backend`] around a fresh copy of the centers.
type BackendFactory = Box<dyn Fn(CenterSet) -> Backend>;

/// The six measured backends, naive first.
fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("naive", Box::new(Backend::Naive) as BackendFactory),
        (
            "blocked",
            Box::new(|s: CenterSet| Backend::Block {
                set: s.with_backend(KernelBackend::Blocked),
                block_points: BLOCK_POINTS,
            }),
        ),
        (
            "blocked-mt",
            Box::new(|s: CenterSet| Backend::Block {
                set: s
                    .with_backend(KernelBackend::Blocked)
                    .with_tile_workers(MT_WORKERS),
                block_points: MT_BLOCK_POINTS,
            }),
        ),
        (
            "kd",
            Box::new(|s: CenterSet| Backend::Block {
                set: s.with_kd_index(),
                block_points: BLOCK_POINTS,
            }),
        ),
        (
            "pruned",
            Box::new(|s: CenterSet| Backend::Block {
                set: s.with_triangle_prune(),
                block_points: BLOCK_POINTS,
            }),
        ),
        (
            "default",
            Box::new(|s: CenterSet| Backend::Block {
                set: s.with_backend(KernelBackend::Auto),
                block_points: BLOCK_POINTS,
            }),
        ),
    ]
}

/// One assignment sweep of a backend: fills `assign` and returns the
/// distance evaluations charged.
fn sweep(backend: &Backend, data: &Dataset, norms: &[f64], assign: &mut Vec<usize>) -> u64 {
    assign.clear();
    let dim = data.dim();
    match backend {
        Backend::Naive(set) => {
            let flat = set.to_dataset();
            let centers = flat.flat();
            for p in data.rows() {
                let (idx, _) = nearest_center_flat(p, centers, dim).expect("non-empty centers");
                assign.push(idx);
            }
            (data.len() * set.len()) as u64
        }
        Backend::Block { set, block_points } => {
            let mut evals = 0u64;
            let flat = data.flat();
            for (bi, block) in flat.chunks(block_points * dim).enumerate() {
                let base = bi * block_points;
                let rows = block.len() / dim;
                for (idx, _, _, e) in set.nearest_block(block, &norms[base..base + rows]) {
                    assign.push(idx);
                    evals += e;
                }
            }
            evals
        }
    }
}

/// Deterministic spread-out init: stride through the dataset (wrapping
/// when `k` exceeds the cell's point count, which deliberately creates
/// duplicate centers — a tie case every backend must break identically).
/// The stride is forced odd so it is coprime to the generator's
/// power-of-two round-robin cluster count — an even stride can alias
/// onto a fraction of the clusters, leaving most queries far from every
/// center, which benchmarks an aliasing artifact rather than the
/// clustered workload the engine actually runs.
fn centers_from(data: &Dataset, k: usize) -> CenterSet {
    let stride = (data.len() / k).max(1) | 1;
    let mut set = CenterSet::new(data.dim());
    for i in 0..k {
        set.push(i as i64, data.row((i * stride) % data.len()));
    }
    set
}

/// Runs a short Lloyd refinement with the backend's assignments and
/// returns the final flat center buffer (for the bit-identity check).
fn lloyd(
    backend_of: impl Fn(CenterSet) -> Backend,
    data: &Dataset,
    norms: &[f64],
    k: usize,
    iters: usize,
) -> Vec<f64> {
    let dim = data.dim();
    let mut set = centers_from(data, k);
    let mut assign = Vec::with_capacity(data.len());
    for _ in 0..iters {
        let backend = backend_of(set.clone());
        sweep(&backend, data, norms, &mut assign);
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for (p, &a) in data.rows().zip(&assign) {
            counts[a] += 1;
            for (s, x) in sums[a * dim..(a + 1) * dim].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut next = CenterSet::new(dim);
        for j in 0..k {
            if counts[j] > 0 {
                let inv = 1.0 / counts[j] as f64;
                let mean: Vec<f64> = sums[j * dim..(j + 1) * dim]
                    .iter()
                    .map(|s| s * inv)
                    .collect();
                next.push(j as i64, &mean);
            } else {
                next.push(j as i64, set.coords(j));
            }
        }
        set = next;
    }
    set.to_dataset().flat().to_vec()
}

/// Points for one cell: sized so a single naive sweep stays near a
/// constant ~25.6M multiply-adds (`n·k·d`), floored so tiny cells still
/// measure something and capped by the configured scale. At the default
/// scale this makes the d=2, k=128 cell exactly the 100k-point workload
/// earlier single-cell revisions of this benchmark measured, so its
/// trajectory stays comparable.
fn cell_points(scale: &ExperimentScale, dim: usize, k: usize) -> usize {
    (scale.points * 256 / (k * dim))
        .max(256)
        .min(scale.points.max(256))
}

/// Measures one (dim, k) cell.
fn run_cell(scale: &ExperimentScale, dim: usize, k: usize) -> KernelCell {
    let n = cell_points(scale, dim, k);
    let spec = GaussianMixture {
        n_points: n,
        dim,
        n_clusters: k.min(128).min(n / 4).max(2),
        box_min: 0.0,
        box_max: 1000.0,
        stddev: 4.0,
        min_separation_sigmas: 3.0,
        // The same seed every cell (the spec's dim/cluster shape already
        // varies the draw) keeps the d=2, k=128 cell's dataset identical
        // to the prior single-cell benchmark's.
        seed: scale.seed ^ 0x6b65,
        weights: ClusterWeights::Balanced,
    };
    let data = spec.generate().expect("dataset generation").points;
    let norms = squared_norms(data.flat(), data.dim());
    let base = centers_from(&data, k);
    let auto_backend = base
        .clone()
        .with_backend(KernelBackend::Auto)
        .speed_backend()
        .unwrap_or("scan");

    let backends = backends();
    let work = n * k * dim;

    // Identity: every backend's short Lloyd run ends bit-identically
    // (fewer iterations on the heaviest cells — the tie/merge structure
    // shows up in the very first assignment pass).
    let iters = if work > 64_000_000 { 2 } else { 3 };
    let finals: Vec<Vec<f64>> = backends
        .iter()
        .map(|(_, mk)| lloyd(mk, &data, &norms, k, iters))
        .collect();
    let identical_centers = finals.iter().all(|f| {
        f.len() == finals[0].len()
            && f.iter()
                .zip(&finals[0])
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });

    // Throughput: best-of-reps — the minimum sweep time is the least
    // noisy estimate of the kernel's cost on a shared machine. Reps are
    // scaled to the cell so big cells do not dominate wall time.
    let reps = (256_000_000 / work.max(1)).clamp(5, 40);
    let mut rows = Vec::new();
    let mut assign = Vec::with_capacity(data.len());
    for (name, mk) in &backends {
        let backend = mk(base.clone());
        // Warm-up (also the eval count; identical across reps).
        let evals = sweep(&backend, &data, &norms, &mut assign);
        let mut wall = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            sweep(&backend, &data, &norms, &mut assign);
            wall = wall.min(start.elapsed().as_secs_f64());
        }
        rows.push(KernelRow {
            name,
            points_per_sec: data.len() as f64 / wall,
            distance_evals: evals,
            wall_secs: wall,
        });
    }

    KernelCell {
        dim,
        k,
        points: n,
        auto_backend,
        rows,
        identical_centers,
    }
}

/// Runs an explicit subset of cells (test hook; `run` sweeps
/// [`CELLS`]).
pub fn run_cells(scale: &ExperimentScale, cells: &[(usize, usize)]) -> KernelBench {
    let cells: Vec<KernelCell> = cells
        .iter()
        .map(|&(dim, k)| run_cell(scale, dim, k))
        .collect();
    let identical_centers = cells.iter().all(|c| c.identical_centers);
    KernelBench {
        cells,
        identical_centers,
    }
}

/// Runs the full d × k sweep.
pub fn run(scale: &ExperimentScale) -> KernelBench {
    run_cells(scale, &CELLS)
}

/// Renders the report.
pub fn render(b: &KernelBench) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in &b.cells {
        for (i, r) in c.rows.iter().enumerate() {
            let head = if i == 0 {
                (
                    c.dim.to_string(),
                    c.k.to_string(),
                    c.points.to_string(),
                    c.auto_backend.to_string(),
                )
            } else {
                (String::new(), String::new(), String::new(), String::new())
            };
            rows.push(vec![
                head.0,
                head.1,
                head.2,
                head.3,
                r.name.to_string(),
                format!("{:.0}", r.points_per_sec),
                format!("{:.2}x", r.points_per_sec / c.rows[0].points_per_sec),
                r.distance_evals.to_string(),
                format!("{:.4}", r.wall_secs),
            ]);
        }
    }
    let mut out = render_table(
        "Nearest-center kernels — d × k sweep",
        &[
            "d",
            "k",
            "points",
            "auto",
            "backend",
            "points/sec",
            "speedup",
            "distance evals",
            "wall secs",
        ],
        &rows,
    );
    out.push_str(&format!(
        "final Lloyd centers identical across backends in every cell: {}\n",
        b.identical_centers
    ));
    out
}

/// Regression guard over the sweep: the engine's *default* path (auto
/// dispatch) must never run slower than the naive scan it replaces, in
/// any cell — and must actually pay off (≥ 2×) in the sweet spot the
/// issue pins (d = 8, k = 512). Allows a small timing-noise slack for
/// shared machines, and only measures optimized builds — unoptimized
/// timing says nothing about the shipped kernel. The CI release smoke
/// run (`repro kernels --quick`) enforces it on every push.
///
/// # Panics
/// Panics when `default` falls below 90% of naive throughput in any
/// measured cell, or below 2× naive at d = 8, k = 512 (when that cell
/// was measured) in an optimized build.
pub fn assert_no_regression(b: &KernelBench) {
    if cfg!(debug_assertions) {
        return;
    }
    for c in &b.cells {
        let s = c.speedup("default");
        assert!(
            s >= 0.9,
            "default backend regressed below naive at d={}, k={}: {:.2}x",
            c.dim,
            c.k,
            s
        );
    }
    if let Some(c) = b.cell(8, 512) {
        let s = c.speedup("default");
        assert!(
            s >= 2.0,
            "default backend below 2x naive at d=8, k=512: {:.2}x",
            s
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap debug-mode cells: one where auto resolves to each concrete
    /// backend (per [`KernelBackend::resolve`]).
    const TEST_CELLS: [(usize, usize); 2] = [(2, 48), (32, 48)];

    fn expected_auto(dim: usize, k: usize) -> &'static str {
        match KernelBackend::Auto.resolve(dim, k) {
            KernelBackend::Kd => "kd",
            KernelBackend::Pruned => "pruned",
            _ => "blocked",
        }
    }

    #[test]
    fn backends_agree_and_speed_paths_charge_scan_cost() {
        let b = run_cells(&ExperimentScale::quick(), &TEST_CELLS);
        assert!(b.identical_centers, "backends diverged");
        assert_eq!(b.cells.len(), 2);
        for c in &b.cells {
            assert_eq!(c.rows.len(), 6);
            assert_eq!(c.auto_backend, expected_auto(c.dim, c.k));
            let naive = &c.rows[0];
            assert_eq!(naive.name, "naive");
            assert_eq!(naive.distance_evals, (c.points * c.k) as u64);
            // Speed backends charge exactly the naive count (the
            // determinism/cost contract); the opt-in index and pruner
            // charge their actual (smaller) counts.
            for speed in ["blocked", "blocked-mt", "default"] {
                let r = c.rows.iter().find(|r| r.name == speed).unwrap();
                assert_eq!(r.distance_evals, naive.distance_evals, "{speed}");
            }
            for actual in ["kd", "pruned"] {
                let r = c.rows.iter().find(|r| r.name == actual).unwrap();
                assert!(r.distance_evals < naive.distance_evals, "{actual}");
            }
        }
        assert_no_regression(&b);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run_cells(&ExperimentScale::quick(), &[(2, 48)]);
        let j = b.to_json();
        assert!(j.contains("\"experiment\": \"kernels\""));
        assert!(j.contains("\"cells\""));
        assert!(j.contains("\"auto_backend\""));
        assert!(j.contains("\"blocked-mt\""));
        assert_eq!(j.matches("points_per_sec").count(), 6);
    }
}
