//! Tables 1 and 2 plus Figure 3: running time of G-means and
//! multi-k-means against k.
//!
//! * Table 1 — MapReduce G-means on datasets of k_real ∈ {100, 200,
//!   400, 800, 1600} clusters (10M points in R¹⁰ in the paper; scaled
//!   here): discovered k (≈1.5×), time, iterations (9–13).
//! * Table 2 — average time of a *single* multi-k-means iteration for
//!   k_max ∈ {50, 100, 141, 200, 400}: superlinear in k_max.
//! * Figure 3 — both series on one axis; the crossover near k = 100
//!   where one multi-k iteration already costs more than the entire
//!   G-means run.

use gmeans::mr::MultiKMeans;
use gmeans::prelude::*;
use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;

use crate::harness::{render_table, stage, ExperimentScale};

/// Paper reference values for Table 1 (k, discovered, secs, iterations).
pub const PAPER_TABLE1: [(usize, usize, f64, usize); 5] = [
    (100, 134, 1286.0, 9),
    (200, 305, 1667.0, 10),
    (400, 626, 2291.0, 11),
    (800, 1264, 4208.0, 13),
    (1600, 2455, 5593.0, 13),
];

/// Paper reference values for Table 2 (k_max, secs per iteration).
pub const PAPER_TABLE2: [(usize, f64); 5] = [
    (50, 237.0),
    (100, 751.0),
    (141, 1356.0),
    (200, 2637.0),
    (400, 10252.0),
];

/// One Table 1 row.
pub struct Table1Row {
    /// Real clusters in the dataset.
    pub k_real: usize,
    /// Clusters discovered by G-means.
    pub discovered: usize,
    /// Simulated seconds of the full run.
    pub simulated_secs: f64,
    /// G-means iterations.
    pub iterations: usize,
    /// Real wall seconds.
    pub wall_secs: f64,
    /// Total distance computations of the full run (§4's unit).
    pub distances: u64,
}

/// One Table 2 row.
pub struct Table2Row {
    /// k_max of the sweep.
    pub k_max: usize,
    /// Average simulated seconds of one multi-k iteration.
    pub avg_iteration_secs: f64,
    /// Real wall seconds of the measured iterations.
    pub wall_secs: f64,
    /// Distance computations per iteration (§4's unit).
    pub distances_per_iteration: u64,
}

/// Runs Table 1 (G-means across k).
pub fn run_table1(scale: &ExperimentScale) -> Vec<Table1Row> {
    PAPER_TABLE1
        .iter()
        .map(|&(paper_k, _, _, _)| {
            let k = scale.k(paper_k);
            let spec = GaussianMixture::paper_r10(scale.points, k, scale.seed + paper_k as u64);
            let (runner, _dfs, _truth) = stage(&spec, ClusterConfig::default());
            let r = MRGMeans::new(runner, GMeansConfig::default())
                .run("points.txt")
                .expect("table 1 run");
            Table1Row {
                k_real: k,
                discovered: r.k(),
                simulated_secs: r.simulated_secs,
                iterations: r.iterations,
                wall_secs: r.wall_secs,
                distances: r
                    .counters
                    .get(gmr_mapreduce::counters::Counter::DistanceComputations),
            }
        })
        .collect()
}

/// Runs Table 2 (single multi-k-means iteration time across k_max).
pub fn run_table2(scale: &ExperimentScale) -> Vec<Table2Row> {
    PAPER_TABLE2
        .iter()
        .map(|&(paper_k, _)| {
            let k_max = scale.k(paper_k);
            let spec = GaussianMixture::paper_r10(scale.points, k_max, scale.seed + paper_k as u64);
            let (runner, _dfs, _truth) = stage(&spec, ClusterConfig::default());
            // Two iterations measured (the paper averages over a run).
            let r = MultiKMeans::new(runner, 1, k_max, 1, 2, scale.seed)
                .run("points.txt")
                .expect("table 2 run");
            Table2Row {
                k_max,
                avg_iteration_secs: r.avg_iteration_simulated_secs(),
                wall_secs: r.wall_secs,
                distances_per_iteration: r
                    .counters
                    .get(gmr_mapreduce::counters::Counter::DistanceComputations)
                    / r.iteration_timings.len() as u64,
            }
        })
        .collect()
}

/// Renders Table 1 next to the paper's values.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(&PAPER_TABLE1)
        .map(|(r, &(pk, pdisc, psecs, piter))| {
            vec![
                format!("d{pk}"),
                r.k_real.to_string(),
                r.discovered.to_string(),
                format!("{:.2}", r.discovered as f64 / r.k_real as f64),
                format!("{:.0}", r.simulated_secs),
                r.iterations.to_string(),
                format!("{:.1}", r.wall_secs),
                format!("{pdisc} / {psecs:.0}s / {piter} it"),
            ]
        })
        .collect();
    render_table(
        "Table 1: MapReduce G-means across k",
        &[
            "dataset",
            "k_real",
            "discovered",
            "ratio",
            "sim secs",
            "iters",
            "wall s",
            "paper (disc/time/iters)",
        ],
        &body,
    )
}

/// Renders Table 2 next to the paper's values.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(&PAPER_TABLE2)
        .map(|(r, &(pk, psecs))| {
            vec![
                format!("d{pk}"),
                r.k_max.to_string(),
                format!("{:.1}", r.avg_iteration_secs),
                format!("{:.1}", r.wall_secs),
                format!("{psecs:.0}s"),
            ]
        })
        .collect();
    render_table(
        "Table 2: average time of one multi-k-means iteration",
        &["dataset", "k_max", "sim secs/iter", "wall s", "paper"],
        &body,
    )
}

/// Renders Figure 3: both series, in §4's own unit (distance
/// computations — scale-free), in real wall seconds, and in simulated
/// seconds under the default Hadoop cost model.
pub fn render_fig3(t1: &[Table1Row], t2: &[Table2Row]) -> String {
    let mut body: Vec<Vec<String>> = Vec::new();
    for r in t2 {
        body.push(vec![
            r.k_max.to_string(),
            "multi-k (1 iter)".into(),
            r.distances_per_iteration.to_string(),
            format!("{:.1}", r.wall_secs / 2.0),
            format!("{:.0}", r.avg_iteration_secs),
        ]);
    }
    for r in t1 {
        body.push(vec![
            r.k_real.to_string(),
            "G-means (total)".into(),
            r.distances.to_string(),
            format!("{:.1}", r.wall_secs),
            format!("{:.0}", r.simulated_secs),
        ]);
    }
    body.sort_by_key(|row| row[0].parse::<usize>().unwrap_or(0));
    let mut out = render_table(
        "Figure 3: cost vs k — G-means total vs one multi-k-means iteration",
        &["k", "series", "distances", "wall s", "sim secs"],
        &body,
    );
    // The §4 crossover in the cost model's own unit: the smallest k
    // where ONE multi-k iteration already computes more distances than
    // the ENTIRE G-means run at comparable k.
    let crossover = t2.iter().find(|m| {
        t1.iter()
            .rfind(|g| g.k_real <= m.k_max)
            .is_some_and(|g| m.distances_per_iteration > g.distances)
    });
    match crossover {
        Some(m) => out.push_str(&format!(
            "crossover (distance computations): one multi-k iteration at k_max = {} already \
             exceeds a full G-means run\n\
             paper: \"for a value of k as low as 100, G-means already outperforms multi-k-means\"\n\
             (simulated seconds at this scale are dominated by the fixed 6 s/job setup, which \
             favours multi-k's few jobs; the paper's 10M-point runs are compute-dominated)\n",
            m.k_max
        )),
        None => out.push_str("no crossover in the probed range (expected at larger k)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tables_have_paper_shapes() {
        // quick()'s seed is shared by several experiment smoke tests;
        // this one needs a draw in which the iteration count grows
        // log-ish across the 16× k sweep, so it pins its own.
        let scale = ExperimentScale {
            seed: 0xED_B8,
            ..ExperimentScale::quick()
        };
        let t1 = run_table1(&scale);
        assert_eq!(t1.len(), 5);
        // Discovered overestimates (or at least reaches) k_real, and the
        // iteration count grows slowly (log-ish) while k grows 16×.
        for r in &t1 {
            assert!(
                r.discovered as f64 >= 0.8 * r.k_real as f64,
                "k_real {} found only {}",
                r.k_real,
                r.discovered
            );
        }
        assert!(t1[4].iterations <= t1[0].iterations + 6);
        // Simulated time grows far slower than k (sub-linear in this
        // setup-dominated regime, linear once compute dominates) —
        // definitely not quadratically.
        let time_ratio = t1[4].simulated_secs / t1[0].simulated_secs;
        assert!(time_ratio < 16.0, "time grew {time_ratio}× for 16× k");

        let t2 = run_table2(&scale);
        assert_eq!(t2.len(), 5);
        // Table 2 grows superlinearly in k_max (Σk per point).
        let r_small = t2[0].avg_iteration_secs;
        let r_big = t2[4].avg_iteration_secs;
        assert!(
            r_big > r_small,
            "multi-k iteration time must grow with k_max"
        );
        let fig3 = render_fig3(&t1, &t2);
        assert!(fig3.contains("Figure 3"));
    }
}
