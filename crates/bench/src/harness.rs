//! Shared experiment plumbing: scaling knobs, dataset staging, table
//! rendering.

use std::sync::Arc;

use gmr_datagen::GaussianMixture;
use gmr_mapreduce::cluster::ClusterConfig;
use gmr_mapreduce::dfs::Dfs;
use gmr_mapreduce::runtime::JobRunner;

/// Global scale of an experiment run.
///
/// The paper's datasets hold 10M points as k sweeps 100→1600, i.e.
/// 6250+ points per cluster. The Anderson–Darling split test needs a
/// healthy per-cluster sample (below ~60 points/cluster the projections
/// of intermediate multi-cluster blobs become statistically
/// indistinguishable from Gaussian and the hierarchy under-splits), so
/// the default scale shrinks *both* axes: 100k points with k halved
/// keeps ≥125 points per cluster at the top of the sweep while every
/// experiment stays within minutes on a laptop. `--quick` shrinks
/// further for smoke tests; `--points 10000000 --k-factor 1` is the
/// paper's own scale.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Points per dataset (the paper's 10M).
    pub points: usize,
    /// Multiplier on the k values of each experiment (1.0 = paper's k).
    pub k_factor: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            points: 100_000,
            k_factor: 0.5,
            seed: 0xED_B7,
        }
    }
}

impl ExperimentScale {
    /// A much smaller configuration for smoke tests / CI.
    pub fn quick() -> Self {
        Self {
            points: 5_000,
            k_factor: 0.0625,
            seed: 0xED_B7,
        }
    }

    /// Scales one of the paper's k values.
    pub fn k(&self, paper_k: usize) -> usize {
        ((paper_k as f64 * self.k_factor).round() as usize).max(2)
    }
}

/// Stages a generated dataset in a fresh DFS and returns a runner on
/// the given cluster (256 KiB splits).
pub fn stage(
    spec: &GaussianMixture,
    cluster: ClusterConfig,
) -> (JobRunner, Arc<Dfs>, gmr_linalg::Dataset) {
    stage_with_block(spec, cluster, 256 * 1024)
}

/// Like [`stage`] with an explicit DFS block (= split) size, for
/// experiments that need a specific map-task granularity.
pub fn stage_with_block(
    spec: &GaussianMixture,
    cluster: ClusterConfig,
    block_size: usize,
) -> (JobRunner, Arc<Dfs>, gmr_linalg::Dataset) {
    let dfs = Arc::new(Dfs::new(block_size));
    let truth = spec
        .generate_to_dfs(&dfs, "points.txt")
        .expect("dataset generation");
    let runner = JobRunner::new(Arc::clone(&dfs), cluster).expect("valid cluster");
    (runner, dfs, truth)
}

/// Reloads a staged dataset into memory for evaluation passes.
pub fn reload(dfs: &Arc<Dfs>, dim: usize) -> gmr_linalg::Dataset {
    let lines = dfs.read_lines("points.txt").expect("dataset staged");
    let mut ds = gmr_linalg::Dataset::with_capacity(dim, lines.len());
    for l in &lines {
        ds.push(&gmr_datagen::parse_point(l).expect("valid point"));
    }
    ds
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_k_rounds_and_floors() {
        let s = ExperimentScale {
            k_factor: 0.1,
            ..ExperimentScale::default()
        };
        assert_eq!(s.k(100), 10);
        assert_eq!(s.k(5), 2); // floor at 2
        assert_eq!(ExperimentScale::default().k(400), 200);
        assert_eq!(ExperimentScale::quick().k(1600), 100);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["k", "time"],
            &[
                vec!["100".into(), "1.5".into()],
                vec!["1600".into(), "12.25".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("1600"));
        // Every data line has the same width.
        let lines: Vec<&str> = t.lines().filter(|l| l.contains("  ")).collect();
        assert!(lines.len() >= 3);
    }

    #[test]
    fn stage_and_reload_round_trip() {
        let spec = GaussianMixture::figure_r2(200, 5);
        let (_runner, dfs, truth) = stage(&spec, ClusterConfig::default());
        assert_eq!(truth.len(), 10);
        let data = reload(&dfs, 2);
        assert_eq!(data.len(), 200);
    }
}
