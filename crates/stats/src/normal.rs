//! Standard normal distribution functions.
//!
//! The Anderson–Darling statistic evaluates the standard normal CDF at
//! every (normalized) sample point, so `normal_cdf` sits on the hot path
//! of every cluster test. The implementation follows W. J. Cody's
//! rational Chebyshev approximations (the netlib `calerf` routine),
//! accurate to roughly machine precision across the full real line.

#![allow(clippy::excessive_precision)] // Cody's published coefficients verbatim

use std::f64::consts::{PI, SQRT_2};

/// Threshold between the central `erf` expansion and the `erfc` tails
/// in Cody's algorithm.
const THRESH: f64 = 0.46875;

/// Central rational approximation of `erf(x)` for `|x| ≤ 0.46875`.
fn erf_central(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.16112374387056560e0,
        1.13864154151050156e2,
        3.77485237685302021e2,
        3.20937758913846947e3,
        1.85777706184603153e-1,
    ];
    const B: [f64; 4] = [
        2.36012909523441209e1,
        2.44024637934444173e2,
        1.28261652607737228e3,
        2.84423683343917062e3,
    ];
    let z = x * x;
    let mut num = A[4] * z;
    let mut den = z;
    for i in 0..3 {
        num = (num + A[i]) * z;
        den = (den + B[i]) * z;
    }
    x * (num + A[3]) / (den + B[3])
}

/// `erfc(y)·exp(y²)` for `0.46875 ≤ y ≤ 4`.
fn erfcx_mid(y: f64) -> f64 {
    const C: [f64; 9] = [
        5.64188496988670089e-1,
        8.88314979438837594e0,
        6.61191906371416295e1,
        2.98635138197400131e2,
        8.81952221241769090e2,
        1.71204761263407058e3,
        2.05107837782607147e3,
        1.23033935479799725e3,
        2.15311535474403846e-8,
    ];
    const D: [f64; 8] = [
        1.57449261107098347e1,
        1.17693950891312499e2,
        5.37181101862009858e2,
        1.62138957456669019e3,
        3.29079923573345963e3,
        4.36261909014324716e3,
        3.43936767414372164e3,
        1.23033935480374942e3,
    ];
    let mut num = C[8] * y;
    let mut den = y;
    for i in 0..7 {
        num = (num + C[i]) * y;
        den = (den + D[i]) * y;
    }
    (num + C[7]) / (den + D[7])
}

/// `erfc(y)·exp(y²)` for `y > 4`.
fn erfcx_tail(y: f64) -> f64 {
    const P: [f64; 6] = [
        3.05326634961232344e-1,
        3.60344899949804439e-1,
        1.25781726111229246e-1,
        1.60837851487422766e-2,
        6.58749161529837803e-4,
        1.63153871373020978e-2,
    ];
    const Q: [f64; 5] = [
        2.56852019228982242e0,
        1.87295284992346047e0,
        5.27905102951428412e-1,
        6.05183413124413191e-2,
        2.33520497626869185e-3,
    ];
    const INV_SQRT_PI: f64 = 5.641895835477562869e-1;
    let z = 1.0 / (y * y);
    let mut num = P[5] * z;
    let mut den = z;
    for i in 0..4 {
        num = (num + P[i]) * z;
        den = (den + Q[i]) * z;
    }
    let r = z * (num + P[4]) / (den + Q[4]);
    (INV_SQRT_PI - r) / y
}

/// Complementary error function, `erfc(x) = 1 − erf(x)`, accurate to
/// near machine precision (Cody's algorithm).
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    let v = if y <= THRESH {
        return 1.0 - erf_central(x);
    } else if y <= 4.0 {
        (-y * y).exp() * erfcx_mid(y)
    } else if y < 26.5 {
        (-y * y).exp() * erfcx_tail(y)
    } else {
        0.0
    };
    if x >= 0.0 {
        v
    } else {
        2.0 - v
    }
}

/// Error function (Cody's algorithm).
pub fn erf(x: f64) -> f64 {
    if x.abs() <= THRESH {
        erf_central(x)
    } else if x >= 0.0 {
        1.0 - erfc(x)
    } else {
        erfc(-x) - 1.0
    }
}

/// CDF of the standard normal distribution, `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// PDF of the standard normal distribution, `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation refined by one Halley step against
/// [`normal_cdf`]; relative error well below `1e-9` for
/// `p ∈ (1e-300, 1 − 1e-16)`.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(0.5) - 0.5204998778).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.9986501020).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_tails() {
        assert!(normal_cdf(-10.0) < 1e-20);
        // 1 − Φ(10) underflows the f64 gap at 1.0, so Φ(10) is exactly 1.
        assert_eq!(normal_cdf(10.0), 1.0);
        assert!((normal_cdf(-5.0) - 2.866515719e-7).abs() < 1e-13);
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
        assert!(normal_pdf(0.0) > normal_pdf(0.1));
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959963985).abs() < 1e-7);
        assert!((normal_quantile(0.8413447461) - 1.0).abs() < 1e-7);
        assert!((normal_quantile(0.001) + 3.090232306).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "p in (0, 1)")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(a in -8.0..8.0f64, b in -8.0..8.0f64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        }

        #[test]
        fn cdf_symmetry(x in -8.0..8.0f64) {
            prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }

        #[test]
        fn quantile_inverts_cdf(x in -5.0..5.0f64) {
            let p = normal_cdf(x);
            prop_assume!(p > 1e-12 && p < 1.0 - 1e-12);
            prop_assert!((normal_quantile(p) - x).abs() < 1e-5);
        }

        #[test]
        fn erf_bounded(x in -50.0..50.0f64) {
            let v = erf(x);
            prop_assert!((-1.0..=1.0).contains(&v));
        }
    }
}
