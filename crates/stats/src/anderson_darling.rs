//! Anderson–Darling normality test.
//!
//! This is the statistical heart of G-means: a cluster is kept when the
//! hypothesis "the projections of its points follow a normal
//! distribution" is accepted, and split otherwise (paper §2, step 6).
//!
//! The implementation follows the classical treatment for the composite
//! hypothesis where both mean and variance are estimated from the sample
//! ("case 4" in D'Agostino & Stephens, *Goodness-of-Fit Techniques*,
//! 1986):
//!
//! 1. sort the (already normalized) sample,
//! 2. compute `A² = −n − (1/n) Σ (2i−1)(ln Φ(xᵢ) + ln(1 − Φ(x_{n+1−i})))`,
//! 3. apply the small-sample correction `A*² = A² (1 + 4/n − 25/n²)`,
//! 4. compare against a critical value, or compute Stephens' p-value.
//!
//! The paper applies the test to samples of at least 20 points
//! ("Anderson-Darling … a minimum size of 8 is considered to be
//! sufficient. In our implementation we use a threshold of 20, to stay
//! on the safe side"), exposed here as [`MIN_SAMPLE_SIZE`].

use crate::normal::normal_cdf;
use gmr_linalg::stats::normalize_in_place;

/// Minimum sample size the paper's implementation tests (§3.2).
pub const MIN_SAMPLE_SIZE: usize = 20;

/// Why a sample could not be tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdError {
    /// Fewer observations than the configured minimum sample size.
    SampleTooSmall {
        /// Number of observations provided.
        got: usize,
        /// Minimum required.
        min: usize,
    },
    /// The sample is constant (zero variance): normalization is
    /// impossible and the test undefined.
    ZeroVariance,
    /// The sample contains NaN or infinite values.
    NonFinite,
}

impl std::fmt::Display for AdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdError::SampleTooSmall { got, min } => {
                write!(f, "sample too small for Anderson-Darling: {got} < {min}")
            }
            AdError::ZeroVariance => write!(f, "sample has zero variance"),
            AdError::NonFinite => write!(f, "sample contains non-finite values"),
        }
    }
}

impl std::error::Error for AdError {}

/// Result of one Anderson–Darling test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdOutcome {
    /// The raw `A²` statistic.
    pub a2: f64,
    /// The corrected `A*² = A²(1 + 4/n − 25/n²)` statistic.
    pub a2_star: f64,
    /// Approximate p-value (Stephens' formulas); probability of seeing a
    /// statistic at least this large under H₀ (normality).
    pub p_value: f64,
    /// Sample size the statistic was computed on.
    pub n: usize,
}

impl AdOutcome {
    /// True iff H₀ (the sample is normal) is **accepted** at significance
    /// `alpha` — i.e. the cluster should be kept, not split.
    pub fn is_normal(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Configured Anderson–Darling normality tester.
///
/// Holds the significance level and minimum sample size so that every
/// call site in the MapReduce jobs applies the same policy.
#[derive(Clone, Copy, Debug)]
pub struct AndersonDarling {
    alpha: f64,
    min_sample: usize,
}

impl Default for AndersonDarling {
    /// Significance `α = 0.0001` (the strict level the original G-means
    /// paper by Hamerly & Elkan recommends so that the number of splits
    /// stays conservative) and the paper's minimum sample size of 20.
    fn default() -> Self {
        Self {
            alpha: 1e-4,
            min_sample: MIN_SAMPLE_SIZE,
        }
    }
}

impl AndersonDarling {
    /// Creates a tester with an explicit significance level and minimum
    /// sample size.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `min_sample ≥ 8` (the rule of
    /// thumb the paper quotes as the absolute floor for the test).
    pub fn new(alpha: f64, min_sample: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(min_sample >= 8, "Anderson-Darling needs at least 8 samples");
        Self { alpha, min_sample }
    }

    /// Significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Minimum sample size.
    pub fn min_sample(&self) -> usize {
        self.min_sample
    }

    /// Tests an arbitrary sample: normalizes a copy to zero mean / unit
    /// variance, then computes the statistic.
    pub fn test(&self, sample: &[f64]) -> Result<AdOutcome, AdError> {
        if sample.len() < self.min_sample {
            return Err(AdError::SampleTooSmall {
                got: sample.len(),
                min: self.min_sample,
            });
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(AdError::NonFinite);
        }
        let mut owned = sample.to_vec();
        if !normalize_in_place(&mut owned) {
            return Err(AdError::ZeroVariance);
        }
        owned.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite after normalization"));
        Ok(self.statistic_sorted_normalized(&owned))
    }

    /// Like [`AndersonDarling::test`] but consumes a buffer, normalizing
    /// and sorting it in place. This is what the TestClusters reducer
    /// uses: it already owns the vector of projections, and the paper's
    /// heap analysis (Figure 2) assumes no second copy is made.
    pub fn test_in_place(&self, sample: &mut [f64]) -> Result<AdOutcome, AdError> {
        if sample.len() < self.min_sample {
            return Err(AdError::SampleTooSmall {
                got: sample.len(),
                min: self.min_sample,
            });
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(AdError::NonFinite);
        }
        if !normalize_in_place(sample) {
            return Err(AdError::ZeroVariance);
        }
        sample.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite after normalization"));
        Ok(self.statistic_sorted_normalized(sample))
    }

    /// Convenience: `true` iff the sample is accepted as normal at the
    /// configured significance level.
    pub fn is_normal(&self, sample: &[f64]) -> Result<bool, AdError> {
        Ok(self.test(sample)?.is_normal(self.alpha))
    }

    /// Computes the statistic on an already normalized, sorted sample.
    fn statistic_sorted_normalized(&self, sorted: &[f64]) -> AdOutcome {
        let n = sorted.len();
        let nf = n as f64;
        // Clamp Φ into (ε, 1−ε): extreme outliers would otherwise produce
        // ln(0) = −∞. The clamp only makes the statistic *larger* (more
        // non-normal), which is the correct direction for an outlier.
        const EPS: f64 = 1e-300;
        let mut sum = 0.0;
        for i in 0..n {
            let phi_lo = normal_cdf(sorted[i]).clamp(EPS, 1.0 - 1e-16);
            let phi_hi = normal_cdf(sorted[n - 1 - i]).clamp(EPS, 1.0 - 1e-16);
            let w = (2 * i + 1) as f64;
            sum += w * (phi_lo.ln() + (1.0 - phi_hi).ln());
        }
        let a2 = -nf - sum / nf;
        let a2_star = a2 * (1.0 + 4.0 / nf - 25.0 / (nf * nf));
        AdOutcome {
            a2,
            a2_star,
            p_value: p_value_case4(a2_star),
            n,
        }
    }
}

/// Stephens' p-value approximation for the corrected statistic `A*²`
/// when mean and variance are estimated (case 4).
///
/// Piecewise formulas from D'Agostino & Stephens (1986), Table 4.9.
pub fn p_value_case4(a2_star: f64) -> f64 {
    let a = a2_star;
    let p = if a > 13.0 {
        // Stephens' quadratic fit is only calibrated up to A*² ≈ 13
        // (p ≈ 1e-28); beyond that the parabola turns upward, so clamp
        // the tail to zero instead of evaluating it.
        0.0
    } else if a >= 0.6 {
        (1.2937 - 5.709 * a + 0.0186 * a * a).exp()
    } else if a > 0.34 {
        (0.9177 - 4.279 * a - 1.38 * a * a).exp()
    } else if a > 0.2 {
        1.0 - (-8.318 + 42.796 * a - 59.938 * a * a).exp()
    } else {
        1.0 - (-13.436 + 101.14 * a - 223.73 * a * a).exp()
    };
    p.clamp(0.0, 1.0)
}

/// Critical value of `A*²` for a handful of standard significance
/// levels (case 4), with log-linear interpolation between table entries
/// and Stephens' tail formula beyond them.
///
/// # Panics
/// Panics unless `0 < alpha < 1`.
pub fn critical_value_case4(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    // (alpha, critical A*²) — D'Agostino & Stephens, case 4.
    const TABLE: [(f64, f64); 5] = [
        (0.15, 0.576),
        (0.10, 0.656),
        (0.05, 0.787),
        (0.025, 0.918),
        (0.01, 1.092),
    ];
    if alpha >= TABLE[0].0 {
        return TABLE[0].1;
    }
    for w in TABLE.windows(2) {
        let (a_hi, v_lo) = w[0];
        let (a_lo, v_hi) = w[1];
        if alpha <= a_hi && alpha >= a_lo {
            // Interpolate linearly in ln(alpha).
            let t = (alpha.ln() - a_hi.ln()) / (a_lo.ln() - a_hi.ln());
            return v_lo + t * (v_hi - v_lo);
        }
    }
    // Below 1%: invert Stephens' upper-tail formula
    // p = exp(1.2937 − 5.709 A + 0.0186 A²)
    //   ⇒ 0.0186 A² − 5.709 A + (1.2937 − ln p) = 0, smaller root.
    let c = 1.2937 - alpha.ln();
    let disc = 5.709 * 5.709 - 4.0 * 0.0186 * c;
    (5.709 - disc.sqrt()) / (2.0 * 0.0186)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic standard normal sample via Box–Muller.
    pub(crate) fn normal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn gaussian_sample_is_accepted() {
        let ad = AndersonDarling::default();
        for seed in 0..5 {
            let xs = normal_sample(500, seed);
            let out = ad.test(&xs).unwrap();
            assert!(
                out.is_normal(ad.alpha()),
                "seed {seed}: A*²={} p={}",
                out.a2_star,
                out.p_value
            );
        }
    }

    #[test]
    fn uniform_sample_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..2000).map(|_| rng.random_range(0.0..1.0)).collect();
        let ad = AndersonDarling::default();
        let out = ad.test(&xs).unwrap();
        assert!(!out.is_normal(ad.alpha()), "A*²={}", out.a2_star);
        assert!(out.a2_star > critical_value_case4(1e-4));
    }

    #[test]
    fn bimodal_sample_is_rejected() {
        // Two well-separated Gaussians — exactly the situation in which
        // G-means must decide to split a cluster.
        let mut xs = normal_sample(400, 1);
        xs.extend(normal_sample(400, 2).iter().map(|x| x + 8.0));
        let ad = AndersonDarling::default();
        assert!(!ad.is_normal(&xs).unwrap());
    }

    #[test]
    fn shifted_scaled_gaussian_is_accepted() {
        // The test normalizes internally, so location/scale must not matter.
        let xs: Vec<f64> = normal_sample(600, 3)
            .iter()
            .map(|x| 42.0 + 1e-3 * x)
            .collect();
        let ad = AndersonDarling::default();
        assert!(ad.is_normal(&xs).unwrap());
    }

    #[test]
    fn small_sample_is_error() {
        let ad = AndersonDarling::default();
        let xs = normal_sample(10, 4);
        assert_eq!(
            ad.test(&xs),
            Err(AdError::SampleTooSmall { got: 10, min: 20 })
        );
    }

    #[test]
    fn constant_sample_is_error() {
        let ad = AndersonDarling::default();
        assert_eq!(ad.test(&vec![3.0; 50]), Err(AdError::ZeroVariance));
    }

    #[test]
    fn non_finite_sample_is_error() {
        let ad = AndersonDarling::default();
        let mut xs = normal_sample(50, 5);
        xs[10] = f64::NAN;
        assert_eq!(ad.test(&xs), Err(AdError::NonFinite));
    }

    #[test]
    fn test_in_place_matches_test() {
        let ad = AndersonDarling::default();
        let xs = normal_sample(100, 6);
        let a = ad.test(&xs).unwrap();
        let mut owned = xs.clone();
        let b = ad.test_in_place(&mut owned).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn critical_values_match_stephens_table() {
        assert!((critical_value_case4(0.05) - 0.787).abs() < 1e-9);
        assert!((critical_value_case4(0.01) - 1.092).abs() < 1e-9);
        assert!((critical_value_case4(0.5) - 0.576).abs() < 1e-9);
        // Interpolated value sits between neighbours.
        let v = critical_value_case4(0.03);
        assert!(v > 0.787 && v < 0.918);
        // Tail extrapolation is monotone.
        assert!(critical_value_case4(1e-4) > critical_value_case4(1e-2));
    }

    #[test]
    fn extreme_statistics_have_zero_p_value() {
        // Stephens' quadratic fit must not be evaluated outside its
        // calibrated range — a wildly non-normal sample (A*² in the
        // hundreds) has p = 0, not p = 1.
        assert_eq!(p_value_case4(515.0), 0.0);
        assert_eq!(p_value_case4(14.0), 0.0);
        assert!(p_value_case4(12.9) < 1e-25);
        assert!(p_value_case4(12.9) > 0.0);
    }

    #[test]
    fn p_value_is_monotone_in_statistic() {
        let mut last = 1.0;
        for i in 1..200 {
            let a = i as f64 * 0.02;
            let p = p_value_case4(a);
            assert!(p <= last + 1e-9, "p not monotone at A*²={a}");
            last = p;
        }
    }

    #[test]
    fn p_value_consistent_with_critical_values() {
        // At the critical value for alpha, the p-value should be close
        // to alpha (the two come from the same source table).
        for &alpha in &[0.05, 0.025, 0.01] {
            let cv = critical_value_case4(alpha);
            let p = p_value_case4(cv);
            assert!(
                (p - alpha).abs() < alpha * 0.35,
                "alpha={alpha}, cv={cv}, p={p}"
            );
        }
    }

    #[test]
    fn statistic_matches_alternate_algebraic_form() {
        // Independent re-derivation: A² can equivalently be written as
        //   A² = −n − (1/n) Σ_i [(2i−1)·ln Φ(zᵢ) + (2(n−i)+1)·ln(1−Φ(zᵢ))]
        // with a completely different index pairing than the production
        // formula. Both must agree on arbitrary data; an off-by-one in
        // either indexing scheme breaks the equality.
        use crate::normal::normal_cdf;
        use gmr_linalg::stats::normalize_in_place;
        for seed in 0..4 {
            let xs = normal_sample(73, 100 + seed);
            let ad = AndersonDarling::new(0.05, 8);
            let out = ad.test(&xs).unwrap();

            let mut z = xs.clone();
            assert!(normalize_in_place(&mut z));
            z.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let n = z.len();
            let mut sum = 0.0;
            for (i, &zi) in z.iter().enumerate() {
                let phi = normal_cdf(zi).clamp(1e-300, 1.0 - 1e-16);
                let i1 = i + 1; // 1-based
                sum +=
                    (2 * i1 - 1) as f64 * phi.ln() + (2 * (n - i1) + 1) as f64 * (1.0 - phi).ln();
            }
            let a2_alt = -(n as f64) - sum / n as f64;
            assert!(
                (out.a2 - a2_alt).abs() < 1e-9,
                "forms disagree: {} vs {a2_alt}",
                out.a2
            );
        }
    }

    #[test]
    fn statistic_known_reference() {
        // An arithmetic sequence 1..=20 (uniform quantiles). R's
        // nortest::ad.test reports the uncorrected A² = 0.2207 for this
        // input (nortest applies a different small-sample correction, so
        // we compare the raw statistic).
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ad = AndersonDarling::new(0.05, 8);
        let out = ad.test(&xs).unwrap();
        assert!((out.a2 - 0.2207).abs() < 2e-3, "A²={}", out.a2);
        // With D'Agostino's correction for estimated parameters:
        assert!((out.a2_star - out.a2 * (1.0 + 4.0 / 20.0 - 25.0 / 400.0)).abs() < 1e-12);
        // Clearly not rejected at any common significance level.
        assert!(out.p_value > 0.5, "p={}", out.p_value);
    }

    #[test]
    fn null_distribution_median_is_plausible() {
        // Under H₀ the median of A*² is ≈ 0.34 (D'Agostino & Stephens).
        // Check the empirical median over independent Gaussian samples.
        let ad = AndersonDarling::new(0.05, 8);
        let mut stats: Vec<f64> = (0..200)
            .map(|seed| ad.test(&normal_sample(100, 1000 + seed)).unwrap().a2_star)
            .collect();
        stats.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = stats[stats.len() / 2];
        assert!(
            (0.22..0.48).contains(&median),
            "empirical null median {median} is implausible"
        );
    }

    #[test]
    fn rejects_exponential_sample() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..1000)
            .map(|_| -rng.random_range(f64::EPSILON..1.0f64).ln())
            .collect();
        let ad = AndersonDarling::default();
        assert!(!ad.is_normal(&xs).unwrap());
    }

    #[test]
    fn acceptance_rate_under_h0_matches_alpha() {
        // At α = 0.05 a genuinely normal sample must be accepted about
        // 95% of the time — this is the calibration G-means leans on to
        // not over-split. 400 independent samples give a tight check.
        let ad = AndersonDarling::new(0.05, 8);
        let accepted = (0..400u64)
            .filter(|&s| ad.is_normal(&normal_sample(150, 5_000 + s)).unwrap())
            .count();
        assert!(
            accepted >= 376,
            "only {accepted}/400 normal samples accepted at alpha=0.05"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::tests::normal_sample;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// At the paper's strict α = 1e-4, a genuinely Gaussian sample
        /// is essentially never flagged for splitting, whatever its
        /// seed or size.
        #[test]
        fn gaussian_samples_survive_strict_alpha(seed: u64, n in 60usize..500) {
            let ad = AndersonDarling::default();
            let out = ad.test(&normal_sample(n, seed)).unwrap();
            prop_assert!(
                out.is_normal(ad.alpha()),
                "seed {seed}, n {n}: A*²={} p={}",
                out.a2_star,
                out.p_value
            );
        }

        /// Two well-separated modes are always rejected — the split
        /// decision G-means exists to make — across mixture weights
        /// and separations.
        #[test]
        fn bimodal_mixtures_are_rejected(
            seed: u64,
            separation in 6.0..16.0f64,
            left_fraction in 0.3..0.7f64,
        ) {
            let n_left = (600.0 * left_fraction) as usize;
            let mut xs = normal_sample(n_left, seed);
            xs.extend(
                normal_sample(600 - n_left, seed ^ 0x9E37_79B9)
                    .iter()
                    .map(|x| x + separation),
            );
            let ad = AndersonDarling::default();
            prop_assert!(
                !ad.is_normal(&xs).unwrap(),
                "separation {separation}, left {n_left} accepted as normal"
            );
        }

        /// Below the rule-of-thumb floor of 8 observations the test
        /// refuses to run, whatever the data looks like.
        #[test]
        fn samples_below_the_floor_are_refused(n in 0usize..8, seed: u64) {
            let ad = AndersonDarling::new(0.05, 8);
            prop_assert_eq!(
                ad.test(&normal_sample(n, seed)),
                Err(AdError::SampleTooSmall { got: n, min: 8 })
            );
        }

        /// Exactly at the floor the statistic exists and is sane.
        #[test]
        fn samples_at_the_floor_are_testable(seed: u64) {
            let ad = AndersonDarling::new(0.05, 8);
            let out = ad.test(&normal_sample(8, seed)).unwrap();
            prop_assert!(out.a2.is_finite());
            prop_assert!(out.a2_star.is_finite());
            prop_assert!((0.0..=1.0).contains(&out.p_value));
            prop_assert_eq!(out.n, 8);
        }

        /// The verdict is location/scale free: an affine map with
        /// positive scale changes neither statistic nor p-value beyond
        /// floating-point noise, because the test normalizes first.
        #[test]
        fn affine_maps_do_not_change_the_statistic(
            seed: u64,
            n in 60usize..300,
            shift in -1e3..1e3f64,
            scale in 1e-3..1e3f64,
        ) {
            let xs = normal_sample(n, seed);
            let ys: Vec<f64> = xs.iter().map(|x| shift + scale * x).collect();
            let ad = AndersonDarling::default();
            let a = ad.test(&xs).unwrap();
            let b = ad.test(&ys).unwrap();
            prop_assert!(
                (a.a2 - b.a2).abs() < 1e-6 * (1.0 + a.a2.abs()),
                "A² moved under affine map: {} vs {}",
                a.a2,
                b.a2
            );
        }

        /// Input order is irrelevant: the test sorts internally, so a
        /// reversed sample agrees up to the rounding noise of summing
        /// the normalization moments in the other order.
        #[test]
        fn input_order_is_irrelevant(seed: u64, n in 20usize..200) {
            let xs = normal_sample(n, seed);
            let mut rev = xs.clone();
            rev.reverse();
            let ad = AndersonDarling::default();
            let a = ad.test(&xs).unwrap();
            let b = ad.test(&rev).unwrap();
            prop_assert_eq!(a.n, b.n);
            prop_assert!((a.a2 - b.a2).abs() < 1e-9 * (1.0 + a.a2.abs()));
            prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
        }
    }
}
