//! Information criteria for spherical Gaussian mixtures.
//!
//! X-means (Pelleg & Moore, 2000) — the other iterative
//! determine-k-algorithm the paper's related work discusses — scores
//! candidate models with the Bayesian Information Criterion. The scoring
//! follows the X-means paper: clusters are modelled as identical
//! spherical Gaussians whose shared variance is the maximum-likelihood
//! estimate, and the log-likelihood of the clustered data decomposes per
//! cluster.

/// Sufficient statistics of a clustering for model scoring.
#[derive(Clone, Debug)]
pub struct ClusterModelStats {
    /// Number of points per cluster (`n_i`).
    pub cluster_sizes: Vec<u64>,
    /// Sum over all points of the squared distance to their assigned
    /// center (the within-cluster sum of squares, WCSS).
    pub wcss: f64,
    /// Dimensionality of the space.
    pub dim: usize,
}

impl ClusterModelStats {
    /// Total number of points.
    pub fn n(&self) -> u64 {
        self.cluster_sizes.iter().sum()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// Number of free parameters of the spherical-Gaussian mixture:
    /// `k − 1` mixture weights, `k·d` center coordinates and one shared
    /// variance.
    pub fn free_parameters(&self) -> u64 {
        (self.k() as u64 - 1) + (self.k() as u64 * self.dim as u64) + 1
    }

    /// Maximum-likelihood estimate of the shared spherical variance,
    /// `σ̂² = WCSS / (d · (n − k))`.
    ///
    /// Returns `None` when the model is saturated (`n ≤ k`) or the
    /// variance estimate degenerates to zero.
    pub fn variance_mle(&self) -> Option<f64> {
        let n = self.n();
        let k = self.k() as u64;
        if n <= k {
            return None;
        }
        let v = self.wcss / (self.dim as f64 * (n - k) as f64);
        if v > 0.0 && v.is_finite() {
            Some(v)
        } else {
            None
        }
    }

    /// Log-likelihood of the data under the spherical mixture (X-means
    /// eq. for `l(D)`), or `None` when the variance estimate degenerates.
    pub fn log_likelihood(&self) -> Option<f64> {
        let variance = self.variance_mle()?;
        let n = self.n() as f64;
        let d = self.dim as f64;
        let k = self.k() as f64;
        let mut ll = 0.0;
        for &ni in &self.cluster_sizes {
            if ni == 0 {
                continue;
            }
            let nif = ni as f64;
            ll += nif * (nif / n).ln();
        }
        ll += -0.5 * n * d * (2.0 * std::f64::consts::PI * variance).ln();
        ll += -0.5 * d * (n - k); // −(1/2σ²)·WCSS with σ² the MLE
        Some(ll)
    }
}

/// Bayesian Information Criterion: `ln L − (p/2)·ln n`.
///
/// Larger is better. Returns `None` when the likelihood degenerates
/// (saturated model or zero variance).
pub fn bic_spherical(stats: &ClusterModelStats) -> Option<f64> {
    let ll = stats.log_likelihood()?;
    let p = stats.free_parameters() as f64;
    let n = stats.n() as f64;
    Some(ll - 0.5 * p * n.ln())
}

/// Akaike Information Criterion, oriented so larger is better:
/// `ln L − p`.
pub fn aic_spherical(stats: &ClusterModelStats) -> Option<f64> {
    let ll = stats.log_likelihood()?;
    Some(ll - stats.free_parameters() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(sizes: &[u64], wcss: f64, dim: usize) -> ClusterModelStats {
        ClusterModelStats {
            cluster_sizes: sizes.to_vec(),
            wcss,
            dim,
        }
    }

    #[test]
    fn parameter_count() {
        let s = stats(&[10, 10], 5.0, 3);
        // (k−1) + k·d + 1 = 1 + 6 + 1
        assert_eq!(s.free_parameters(), 8);
        assert_eq!(s.n(), 20);
        assert_eq!(s.k(), 2);
    }

    #[test]
    fn variance_mle_basic() {
        let s = stats(&[50, 50], 200.0, 2);
        // 200 / (2 · 98)
        assert!((s.variance_mle().unwrap() - 200.0 / 196.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_model_degenerates() {
        let s = stats(&[1, 1], 0.0, 2);
        assert_eq!(s.variance_mle(), None);
        assert_eq!(bic_spherical(&s), None);
        assert_eq!(aic_spherical(&s), None);
    }

    #[test]
    fn bic_prefers_true_structure() {
        // Two tight, well separated blobs: splitting into k=2 must beat
        // k=1. Model A: one cluster covering both blobs (huge WCSS).
        // Model B: two clusters, each tight.
        let n = 1000;
        let one = stats(&[n], 50_000.0, 2);
        let two = stats(&[n / 2, n / 2], 500.0, 2);
        let bic1 = bic_spherical(&one).unwrap();
        let bic2 = bic_spherical(&two).unwrap();
        assert!(bic2 > bic1, "bic k=2 {bic2} should beat k=1 {bic1}");
    }

    #[test]
    fn bic_penalizes_needless_split() {
        // One tight blob: splitting it in two barely reduces WCSS but
        // costs parameters, so k=1 must win.
        let n = 1000;
        let one = stats(&[n], 1000.0, 2);
        let two = stats(&[n / 2, n / 2], 980.0, 2);
        assert!(bic_spherical(&one).unwrap() > bic_spherical(&two).unwrap());
    }

    #[test]
    fn aic_and_bic_agree_on_clear_cases() {
        let n = 1000;
        let one = stats(&[n], 50_000.0, 2);
        let two = stats(&[n / 2, n / 2], 500.0, 2);
        assert!(aic_spherical(&two).unwrap() > aic_spherical(&one).unwrap());
    }

    #[test]
    fn empty_cluster_is_tolerated() {
        let s = stats(&[100, 0, 100], 300.0, 2);
        assert!(bic_spherical(&s).is_some());
    }
}
