//! Statistical machinery for the G-means MapReduce reproduction.
//!
//! The core of G-means is a statistical hypothesis test: a cluster is
//! split iff the 1-D projection of its points onto the axis joining its
//! two candidate children does **not** look Gaussian. The paper uses the
//! Anderson–Darling test ("a powerful statistical test, which has proved
//! being reliable even with small samples", §3.2) with a minimum sample
//! size of 20.
//!
//! * [`normal`] — `erf`, the standard normal CDF/PDF and a quantile
//!   function, the ingredients of the A² statistic.
//! * [`anderson_darling`] — the A² statistic, the small-sample A*²
//!   correction for the case where mean and variance are estimated from
//!   the data, Stephens' critical-value table and p-value formulas.
//! * [`information`] — BIC and AIC scores for spherical Gaussian mixture
//!   models, used by the X-means baseline the paper compares G-means
//!   against in related work.

#![warn(missing_docs)]

pub mod anderson_darling;
pub mod information;
pub mod normal;

pub use anderson_darling::{AdError, AdOutcome, AndersonDarling, MIN_SAMPLE_SIZE};
pub use information::{aic_spherical, bic_spherical, ClusterModelStats};
pub use normal::{erf, erfc, normal_cdf, normal_pdf, normal_quantile};
