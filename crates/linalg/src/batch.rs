//! Blocked nearest-center kernel over tiles of points × tiles of centers.
//!
//! The scalar [`nearest_center_flat`](crate::nearest_center_flat) scan
//! streams all `k` centers through the cache once *per point*. This
//! kernel instead processes a tile of points against a tile of centers so
//! the center tile stays hot in L1, and uses the norm decomposition
//! `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²` with squared norms computed once per
//! buffer instead of per pair.
//!
//! The decomposition is numerically *different* from the direct
//! subtract-square-accumulate loop, so it is used only to compute
//! **bounds**. Every center whose bound is within a conservative error
//! margin of the minimum bound survives, and the survivors are
//! re-evaluated with the exact [`squared_euclidean`] loop in ascending
//! center order with first-wins tie-breaking — the argmin and the
//! reported squared distance are therefore bit-identical to the naive
//! scan, which is what the fault-replay and checkpoint-resume suites
//! require.
//!
//! At very low dimensionality (d < 4) the bounds pass costs as much as
//! the exact scan and the survivor pass then pays again, so the entry
//! point falls back to the scalar scan per point — same results, none
//! of the overhead.

use crate::distance::squared_euclidean;

/// Points per tile: large enough to amortize the per-tile center sweep,
/// small enough that the bound buffer stays cache-resident.
const POINT_TILE: usize = 64;

/// Centers per tile: a tile of `32 × dim` f64s fits in L1 for the low
/// dimensionalities the paper evaluates (d ≤ 10).
const CENTER_TILE: usize = 32;

/// Minimum dimensionality for the norm-decomposition bounds pass.
///
/// Below this the decomposition loses: the dot product costs as many
/// flops as the exact subtract-square loop, and the survivor pass then
/// pays the exact loop *again*, so the kernel ran slower than the plain
/// scan it was meant to beat (the `BENCH_kernels.json` d = 2 workload
/// measured 0.73× naive). For d < 4 the batch entry point delegates to
/// [`nearest_center_flat`](crate::nearest_center_flat) per point, which
/// is the bit-identity contract's reference anyway.
const MIN_DECOMPOSITION_DIM: usize = 4;

/// Squared Euclidean norm of every row in a flat row-major buffer.
///
/// # Panics
/// Panics if `flat.len()` is not a multiple of `dim` or `dim == 0`.
pub fn squared_norms(flat: &[f64], dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(flat.len() % dim, 0, "ragged row buffer");
    flat.chunks_exact(dim)
        .map(|row| row.iter().map(|x| x * x).sum())
        .collect()
}

/// Conservative upper bound on the absolute error between the
/// decomposition bound and the exact squared distance for one pair.
///
/// Both computations accumulate `O(dim)` terms no larger in magnitude
/// than `‖x‖² + ‖c‖²` (since `2|x·c| ≤ ‖x‖² + ‖c‖²`), so each carries a
/// rounding error of at most a small multiple of `dim · ε` relative to
/// that scale. The factor 8 and the `+ 8` are deliberate slack: a margin
/// that is too wide only re-evaluates a few extra centers, while one
/// that is too narrow would silently change an argmin.
#[inline]
fn bound_margin(dim: usize, px2: f64, cn_max: f64) -> f64 {
    (dim as f64 + 8.0) * 8.0 * f64::EPSILON * (px2 + cn_max)
}

/// Nearest center for every point of a flat row-major block, returning
/// one `(center_index, squared_distance)` per point.
///
/// `point_norms` / `center_norms` are the per-row squared norms of
/// `points` / `centers` (see [`squared_norms`]); callers cache them so
/// repeated sweeps (one per Lloyd iteration) pay for them once.
///
/// The result is bit-identical to calling
/// [`nearest_center_flat`](crate::nearest_center_flat) per point,
/// including first-wins tie-breaking on exactly equal distances.
///
/// # Panics
/// Panics if `centers` is empty, `dim == 0`, buffers are ragged, or the
/// norm slices disagree with the row counts.
pub fn nearest_centers_batch(
    points: &[f64],
    point_norms: &[f64],
    centers: &[f64],
    center_norms: &[f64],
    dim: usize,
) -> Vec<(usize, f64)> {
    assert!(dim > 0, "dimension must be positive");
    assert!(!centers.is_empty(), "no centers");
    assert_eq!(points.len() % dim, 0, "ragged point buffer");
    assert_eq!(centers.len() % dim, 0, "ragged center buffer");
    let n = points.len() / dim;
    let k = centers.len() / dim;
    assert_eq!(point_norms.len(), n, "point norm count mismatch");
    assert_eq!(center_norms.len(), k, "center norm count mismatch");

    // Low dimension: the bounds trick cannot win (see
    // [`MIN_DECOMPOSITION_DIM`]); use the reference scan directly.
    if dim < MIN_DECOMPOSITION_DIM {
        return points
            .chunks_exact(dim)
            .map(|p| {
                crate::distance::nearest_center_flat(p, centers, dim).expect("non-empty centers")
            })
            .collect();
    }

    let cn_max = center_norms.iter().cloned().fold(0.0f64, f64::max);
    let mut out = Vec::with_capacity(n);
    // Bound buffer for one tile of points, row-major: tile_rows × k,
    // plus the running minimum bound of each point row.
    let mut bounds = vec![0.0f64; POINT_TILE * k];
    let mut min_bounds = [0.0f64; POINT_TILE];

    for (tile_idx, tile) in points.chunks(POINT_TILE * dim).enumerate() {
        let rows = tile.len() / dim;
        let tile_norms = &point_norms[tile_idx * POINT_TILE..tile_idx * POINT_TILE + rows];
        min_bounds[..rows].fill(f64::INFINITY);

        // Bounds pass: tile of points × tile of centers, centers hot.
        for (ct_idx, c_tile) in centers.chunks(CENTER_TILE * dim).enumerate() {
            let c_base = ct_idx * CENTER_TILE;
            let c_rows = c_tile.len() / dim;
            for (pi, p) in tile.chunks_exact(dim).enumerate() {
                let px2 = tile_norms[pi];
                let row = &mut bounds[pi * k + c_base..pi * k + c_base + c_rows];
                let mut min = min_bounds[pi];
                for (cj, c) in c_tile.chunks_exact(dim).enumerate() {
                    let mut dot = 0.0;
                    for (x, y) in p.iter().zip(c) {
                        dot += x * y;
                    }
                    let b = px2 - 2.0 * dot + center_norms[c_base + cj];
                    row[cj] = b;
                    min = min.min(b);
                }
                min_bounds[pi] = min;
            }
        }

        // Survivor pass: exact recomputation in ascending center order.
        for (pi, p) in tile.chunks_exact(dim).enumerate() {
            let row = &bounds[pi * k..(pi + 1) * k];
            let cutoff = min_bounds[pi] + bound_margin(dim, tile_norms[pi], cn_max);
            let mut best: Option<(usize, f64)> = None;
            if cutoff.is_finite() {
                for (j, &b) in row.iter().enumerate() {
                    if b <= cutoff {
                        let d = squared_euclidean(p, &centers[j * dim..(j + 1) * dim]);
                        match best {
                            Some((_, bd)) if bd <= d => {}
                            _ => best = Some((j, d)),
                        }
                    }
                }
            }
            // Non-finite coordinates poison the bounds; fall back to the
            // plain scan so the result still matches it exactly.
            let (idx, d2) = best.unwrap_or_else(|| {
                crate::distance::nearest_center_flat(p, centers, dim).expect("non-empty centers")
            });
            out.push((idx, d2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_center_flat;
    use proptest::prelude::*;

    fn naive(points: &[f64], centers: &[f64], dim: usize) -> Vec<(usize, f64)> {
        points
            .chunks_exact(dim)
            .map(|p| nearest_center_flat(p, centers, dim).unwrap())
            .collect()
    }

    #[test]
    fn matches_naive_on_small_input() {
        let points = [0.0, 0.0, 9.0, 1.0, -3.0, 4.0];
        let centers = [0.0, 0.0, 10.0, 0.0, -4.0, 4.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 2),
            &centers,
            &squared_norms(&centers, 2),
            2,
        );
        assert_eq!(got, naive(&points, &centers, 2));
    }

    #[test]
    fn exact_ties_prefer_first_center() {
        // Every point sits exactly between two duplicated centers; the
        // batch kernel must agree with the scan's first-wins rule.
        let centers = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0];
        let points = [3.0, 3.0, 1.0, 1.0, 5.0, 5.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 2),
            &centers,
            &squared_norms(&centers, 2),
            2,
        );
        assert_eq!(got, naive(&points, &centers, 2));
        assert_eq!(got[1].0, 0, "duplicate centers: lowest index wins");
    }

    #[test]
    fn exact_ties_prefer_first_center_in_the_tile_loop() {
        // Same contract at a dimension that takes the bounds pass
        // (d ≥ 4): duplicated centers must still resolve first-wins.
        let centers = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0];
        let points = [3.0, 3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 4),
            &centers,
            &squared_norms(&centers, 4),
            4,
        );
        assert_eq!(got, naive(&points, &centers, 4));
        assert_eq!(got[0].0, 0, "equidistant duplicates: lowest index wins");
    }

    #[test]
    fn spans_multiple_tiles() {
        // More points than POINT_TILE and more centers than CENTER_TILE,
        // at a dimension high enough to run the tile loop rather than
        // the low-dimension fallback.
        let dim = 5;
        let points: Vec<f64> = (0..(POINT_TILE * 2 + 7) * dim)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let centers: Vec<f64> = (0..(CENTER_TILE + 5) * dim)
            .map(|i| ((i * 53) % 97) as f64 - 48.0)
            .collect();
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, dim),
            &centers,
            &squared_norms(&centers, dim),
            dim,
        );
        assert_eq!(got, naive(&points, &centers, dim));
    }

    proptest! {
        #[test]
        fn batch_is_bit_identical_to_scan(
            dim in 1usize..6,
            n in 1usize..150,
            k in 1usize..40,
            seed: u64,
        ) {
            // Deterministic pseudo-random fill; proptest drives the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 100.0
            };
            let points: Vec<f64> = (0..n * dim).map(|_| next()).collect();
            let centers: Vec<f64> = (0..k * dim).map(|_| next()).collect();
            let got = nearest_centers_batch(
                &points,
                &squared_norms(&points, dim),
                &centers,
                &squared_norms(&centers, dim),
                dim,
            );
            let want = naive(&points, &centers, dim);
            // Bit-identical: same index AND the exact same f64 distance.
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }

        #[test]
        fn batch_handles_clustered_near_ties(
            n in 1usize..80,
            seed: u64,
        ) {
            // Centers on a coarse grid and points snapped to midpoints
            // produce many exact ties.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 7) as f64
            };
            let centers: Vec<f64> = (0..16).map(|_| next()).collect();
            let points: Vec<f64> = (0..n * 2).map(|_| next() + 0.5).collect();
            let got = nearest_centers_batch(
                &points,
                &squared_norms(&points, 2),
                &centers,
                &squared_norms(&centers, 2),
                2,
            );
            let want = naive(&points, &centers, 2);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }
    }
}
