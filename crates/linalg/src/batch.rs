//! Blocked nearest-center kernel over tiles of points × tiles of centers.
//!
//! The scalar [`nearest_center_flat`](crate::nearest_center_flat) scan
//! streams all `k` centers through the cache once *per point*, and its
//! accumulator chain (`acc += d·d`) is a serial dependency no compiler
//! can vectorize. This kernel instead processes a tile of points against
//! a tile of centers so the center tile stays hot in L1, and uses the
//! norm decomposition `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²` with squared
//! norms computed once per buffer instead of per pair.
//!
//! The decomposition is numerically *different* from the direct
//! subtract-square-accumulate loop, so it is used only to compute
//! **bounds**. Every center whose bound is within a conservative error
//! margin of the minimum bound survives, and the survivors are
//! re-evaluated with the exact [`squared_euclidean`] loop in ascending
//! center order with first-wins tie-breaking — the argmin and the
//! reported squared distance are therefore bit-identical to the naive
//! scan, which is what the fault-replay and checkpoint-resume suites
//! require.
//!
//! # Tile layout and SIMD
//!
//! Each center tile of (up to) `CENTER_TILE` centers is transposed
//! once into dimension-major order — `t[d·CENTER_TILE + j]` is
//! coordinate `d` of tile-center `j` — so the bounds pass for one point
//! is a rank-1 update: broadcast `p[d]`, multiply by a contiguous lane
//! of 32 center coordinates, accumulate into 32 independent dot-product
//! accumulators. There is no reduction dependency across lanes, which is
//! exactly the shape SIMD wants. On x86-64 an AVX2+FMA path (selected
//! once at runtime via `is_x86_feature_detected!`) runs the update as
//! 8 × 4-lane fused multiply-adds; everywhere else a 32-wide scalar
//! accumulator array autovectorizes to whatever the target baseline
//! offers. Bound values may differ between the two paths by a few ulps —
//! the margin covers both — but the *output* is identical because every
//! survivor is re-evaluated exactly.
//!
//! Partial tiles are padded with zero coordinates and `+∞` norms: a
//! padded lane's bound is `+∞`, so it can never win the minimum and
//! never survives.
//!
//! # Deterministic parallel tiles
//!
//! [`nearest_centers_batch_tiled`] splits the point rows across a
//! bounded set of scoped worker threads. Each worker owns a disjoint,
//! contiguous range of output slots decided *before* any thread starts
//! — tile order, not completion order — and the per-point result is a
//! pure function of `(point, centers)`, so the output (and therefore
//! emission order, charged evaluations, and fault replay downstream) is
//! byte-identical to the single-threaded run no matter how the OS
//! schedules the workers.

use crate::distance::squared_euclidean;

/// Points per tile: large enough to amortize the per-tile center sweep,
/// small enough that the bound buffer stays cache-resident.
const POINT_TILE: usize = 64;

/// Centers per tile: a tile of `32 × dim` f64s fits in L1 for the low
/// dimensionalities the paper evaluates (d ≤ 10), and 32 lanes is a
/// multiple of every f64 SIMD width in sight (2, 4, 8).
const CENTER_TILE: usize = 32;

/// Squared Euclidean norm of every row in a flat row-major buffer.
///
/// # Panics
/// Panics if `flat.len()` is not a multiple of `dim` or `dim == 0`.
pub fn squared_norms(flat: &[f64], dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(flat.len() % dim, 0, "ragged row buffer");
    flat.chunks_exact(dim)
        .map(|row| row.iter().map(|x| x * x).sum())
        .collect()
}

/// Conservative upper bound on the absolute error between the
/// decomposition bound and the exact squared distance for one pair.
///
/// Both computations accumulate `O(dim)` terms no larger in magnitude
/// than `‖x‖² + ‖c‖²` (since `2|x·c| ≤ ‖x‖² + ‖c‖²`), so each carries a
/// rounding error of at most a small multiple of `dim · ε` relative to
/// that scale. The factor 8 and the `+ 8` are deliberate slack — wide
/// enough to also cover the FMA/reassociation differences of the SIMD
/// bounds path: a margin that is too wide only re-evaluates a few extra
/// centers, while one that is too narrow would silently change an
/// argmin. The cutoff is `min_bound + margin` and both the true
/// nearest's bound and the minimum bound err by at most one margin-half
/// each, which is why [`nearest_into`] applies the margin once on top of
/// the observed minimum.
#[inline]
fn bound_margin(dim: usize, px2: f64, cn_max: f64) -> f64 {
    (dim as f64 + 8.0) * 8.0 * f64::EPSILON * (px2 + cn_max)
}

/// One transposed center tile: `t[d * CENTER_TILE + j]` is coordinate
/// `d` of the tile's `j`-th center. Lanes `rows..CENTER_TILE` are
/// padding (zero coordinates, `+∞` norm).
struct CenterTile {
    t: Vec<f64>,
    norms: [f64; CENTER_TILE],
    /// Real centers in this tile (the rest is padding).
    rows: usize,
    /// Global index of the tile's first center.
    base: usize,
}

/// Transposes the center buffer into per-tile dimension-major layout.
fn transpose_tiles(centers: &[f64], center_norms: &[f64], dim: usize) -> Vec<CenterTile> {
    centers
        .chunks(CENTER_TILE * dim)
        .enumerate()
        .map(|(ti, chunk)| {
            let rows = chunk.len() / dim;
            let base = ti * CENTER_TILE;
            let mut t = vec![0.0f64; dim * CENTER_TILE];
            for (j, c) in chunk.chunks_exact(dim).enumerate() {
                for (d, &x) in c.iter().enumerate() {
                    t[d * CENTER_TILE + j] = x;
                }
            }
            let mut norms = [f64::INFINITY; CENTER_TILE];
            norms[..rows].copy_from_slice(&center_norms[base..base + rows]);
            CenterTile {
                t,
                norms,
                rows,
                base,
            }
        })
        .collect()
}

/// Whether the AVX2+FMA bounds kernel is available, probed once.
#[cfg(target_arch = "x86_64")]
fn simd_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn simd_available() -> bool {
    false
}

/// Scalar bounds pass for one point against one transposed center tile:
/// writes the tile's bounds into `out_row` and returns the tile minimum.
///
/// The 32 accumulators are independent, so this loop autovectorizes at
/// whatever width the compilation target guarantees; it is also the
/// reference the AVX2 path must stay within one margin of.
#[inline]
fn tile_bounds_scalar(p: &[f64], px2: f64, tile: &CenterTile, out_row: &mut [f64]) -> f64 {
    let mut dot = [0.0f64; CENTER_TILE];
    for (d, &pd) in p.iter().enumerate() {
        let col = &tile.t[d * CENTER_TILE..(d + 1) * CENTER_TILE];
        for (acc, &c) in dot.iter_mut().zip(col) {
            *acc += pd * c;
        }
    }
    let mut bs = [0.0f64; CENTER_TILE];
    for (b, (&acc, &cn)) in bs.iter_mut().zip(dot.iter().zip(&tile.norms)) {
        *b = px2 - 2.0 * acc + cn;
    }
    let mut min = f64::INFINITY;
    for &b in &bs {
        min = min.min(b);
    }
    out_row[..tile.rows].copy_from_slice(&bs[..tile.rows]);
    min
}

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{CenterTile, CENTER_TILE};
    use std::arch::x86_64::*;

    /// AVX2+FMA bounds pass for one point against one transposed tile:
    /// 8 × 4-lane FMA accumulators cover the 32 center lanes with no
    /// cross-lane dependency. Returns the tile's minimum bound.
    ///
    /// NaN note: `_mm256_min_pd` propagates its *second* operand on a
    /// NaN input, so a transient NaN bound can only *raise* the running
    /// minimum (or leave it NaN) — never lower it. A raised minimum
    /// widens the survivor cutoff (harmless: extra exact re-evaluations)
    /// and a NaN minimum makes the cutoff non-finite, which sends the
    /// caller to the exact per-point scan. Either way the output stays
    /// bit-identical to the scan.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_bounds(p: &[f64], px2: f64, tile: &CenterTile, out_row: &mut [f64]) -> f64 {
        const LANES: usize = 4;
        const VECS: usize = CENTER_TILE / LANES;
        let mut acc = [_mm256_setzero_pd(); VECS];
        let t = tile.t.as_ptr();
        for (d, &pd) in p.iter().enumerate() {
            let pv = _mm256_set1_pd(pd);
            let col = t.add(d * CENTER_TILE);
            for (v, a) in acc.iter_mut().enumerate() {
                *a = _mm256_fmadd_pd(pv, _mm256_loadu_pd(col.add(v * LANES)), *a);
            }
        }
        let two = _mm256_set1_pd(2.0);
        let px2v = _mm256_set1_pd(px2);
        let mut bs = [0.0f64; CENTER_TILE];
        let mut minv = _mm256_set1_pd(f64::INFINITY);
        for (v, a) in acc.iter().enumerate() {
            let cn = _mm256_loadu_pd(tile.norms.as_ptr().add(v * LANES));
            // px2 − 2·dot + ‖c‖², with the subtraction fused.
            let b = _mm256_add_pd(_mm256_fnmadd_pd(*a, two, px2v), cn);
            _mm256_storeu_pd(bs.as_mut_ptr().add(v * LANES), b);
            minv = _mm256_min_pd(minv, b);
        }
        let lo = _mm256_castpd256_pd128(minv);
        let hi = _mm256_extractf128_pd(minv, 1);
        let m = _mm_min_pd(lo, hi);
        let m = _mm_min_sd(m, _mm_unpackhi_pd(m, m));
        out_row[..tile.rows].copy_from_slice(&bs[..tile.rows]);
        _mm_cvtsd_f64(m)
    }
}

/// Bounds pass for one point against one tile, dispatching to the AVX2
/// kernel when the caller's one-time probe allowed it.
#[inline]
fn tile_bounds(p: &[f64], px2: f64, tile: &CenterTile, out_row: &mut [f64], use_simd: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: `use_simd` is only true when `simd_available()`
        // confirmed AVX2 and FMA at runtime.
        return unsafe { avx::tile_bounds(p, px2, tile, out_row) };
    }
    let _ = use_simd;
    tile_bounds_scalar(p, px2, tile, out_row)
}

/// The serial kernel over a pre-transposed center buffer, writing one
/// `(center_index, squared_distance)` per point row into `out`.
#[allow(clippy::too_many_arguments)]
fn nearest_into(
    points: &[f64],
    point_norms: &[f64],
    centers: &[f64],
    tiles: &[CenterTile],
    dim: usize,
    k: usize,
    cn_max: f64,
    use_simd: bool,
    out: &mut [(usize, f64)],
) {
    let mut bounds = vec![0.0f64; POINT_TILE * k];
    let mut min_bounds = [0.0f64; POINT_TILE];

    for (tile_idx, tile) in points.chunks(POINT_TILE * dim).enumerate() {
        let rows = tile.len() / dim;
        let p_base = tile_idx * POINT_TILE;
        let tile_norms = &point_norms[p_base..p_base + rows];
        min_bounds[..rows].fill(f64::INFINITY);

        // Bounds pass: tile of points × transposed tile of centers.
        for ct in tiles {
            for (pi, p) in tile.chunks_exact(dim).enumerate() {
                let px2 = tile_norms[pi];
                let row = &mut bounds[pi * k + ct.base..pi * k + ct.base + ct.rows];
                let min = tile_bounds(p, px2, ct, row, use_simd);
                min_bounds[pi] = min_bounds[pi].min(min);
            }
        }

        // Survivor pass: exact recomputation in ascending center order.
        for (pi, p) in tile.chunks_exact(dim).enumerate() {
            let row = &bounds[pi * k..(pi + 1) * k];
            let cutoff = min_bounds[pi] + bound_margin(dim, tile_norms[pi], cn_max);
            let mut best: Option<(usize, f64)> = None;
            if cutoff.is_finite() {
                for (j, &b) in row.iter().enumerate() {
                    if b <= cutoff {
                        let d = squared_euclidean(p, &centers[j * dim..(j + 1) * dim]);
                        match best {
                            Some((_, bd)) if bd <= d => {}
                            _ => best = Some((j, d)),
                        }
                    }
                }
            }
            // Non-finite coordinates poison the bounds; fall back to the
            // plain scan so the result still matches it exactly.
            out[p_base + pi] = best.unwrap_or_else(|| {
                crate::distance::nearest_center_flat(p, centers, dim).expect("non-empty centers")
            });
        }
    }
}

/// Nearest center for every point of a flat row-major block, returning
/// one `(center_index, squared_distance)` per point.
///
/// `point_norms` / `center_norms` are the per-row squared norms of
/// `points` / `centers` (see [`squared_norms`]); callers cache them so
/// repeated sweeps (one per Lloyd iteration) pay for them once.
///
/// The result is bit-identical to calling
/// [`nearest_center_flat`](crate::nearest_center_flat) per point,
/// including first-wins tie-breaking on exactly equal distances.
///
/// # Panics
/// Panics if `centers` is empty, `dim == 0`, buffers are ragged, or the
/// norm slices disagree with the row counts.
pub fn nearest_centers_batch(
    points: &[f64],
    point_norms: &[f64],
    centers: &[f64],
    center_norms: &[f64],
    dim: usize,
) -> Vec<(usize, f64)> {
    nearest_centers_batch_tiled(points, point_norms, centers, center_norms, dim, 1)
}

/// [`nearest_centers_batch`] with the point rows split across up to
/// `workers` scoped threads in deterministic tile order.
///
/// Output, and therefore everything computed from it downstream
/// (emission order, charged evaluations, checkpoints, fault replay), is
/// byte-identical for every `workers` value: each worker is handed a
/// contiguous run of point tiles and a matching disjoint output slice
/// *before* any thread runs, and each point's result is a pure function
/// of the inputs. `workers ≤ 1`, tiny blocks, and single-tile inputs
/// run inline on the calling thread.
///
/// # Panics
/// Same contract as [`nearest_centers_batch`].
pub fn nearest_centers_batch_tiled(
    points: &[f64],
    point_norms: &[f64],
    centers: &[f64],
    center_norms: &[f64],
    dim: usize,
    workers: usize,
) -> Vec<(usize, f64)> {
    assert!(dim > 0, "dimension must be positive");
    assert!(!centers.is_empty(), "no centers");
    assert_eq!(points.len() % dim, 0, "ragged point buffer");
    assert_eq!(centers.len() % dim, 0, "ragged center buffer");
    let n = points.len() / dim;
    let k = centers.len() / dim;
    assert_eq!(point_norms.len(), n, "point norm count mismatch");
    assert_eq!(center_norms.len(), k, "center norm count mismatch");
    if n == 0 {
        return Vec::new();
    }

    // A non-finite center poisons every decomposition bound involving
    // it, and the naive scan's comparison semantics around NaN are what
    // the bit-identity contract pins — delegate the whole block to the
    // reference scan. (Non-finite *points* are handled per point by the
    // cutoff check inside the kernel.)
    if center_norms.iter().any(|cn| !cn.is_finite()) {
        return points
            .chunks_exact(dim)
            .map(|p| {
                crate::distance::nearest_center_flat(p, centers, dim).expect("non-empty centers")
            })
            .collect();
    }

    let cn_max = center_norms.iter().cloned().fold(0.0f64, f64::max);
    let tiles = transpose_tiles(centers, center_norms, dim);
    let use_simd = simd_available();
    let mut out = vec![(0usize, 0.0f64); n];

    // Contiguous point-tile ranges per worker, fixed before spawning.
    let n_tiles = n.div_ceil(POINT_TILE);
    let workers = workers.clamp(1, n_tiles);
    if workers == 1 {
        nearest_into(
            points,
            point_norms,
            centers,
            &tiles,
            dim,
            k,
            cn_max,
            use_simd,
            &mut out,
        );
        return out;
    }

    let tiles_per_worker = n_tiles.div_ceil(workers);
    let rows_per_worker = tiles_per_worker * POINT_TILE;
    std::thread::scope(|s| {
        let tiles = &tiles;
        let mut rest = out.as_mut_slice();
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = rows_per_worker.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let p = &points[offset * dim..(offset + take) * dim];
            let pn = &point_norms[offset..offset + take];
            offset += take;
            s.spawn(move || {
                nearest_into(p, pn, centers, tiles, dim, k, cn_max, use_simd, chunk);
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_center_flat;
    use proptest::prelude::*;

    fn naive(points: &[f64], centers: &[f64], dim: usize) -> Vec<(usize, f64)> {
        points
            .chunks_exact(dim)
            .map(|p| nearest_center_flat(p, centers, dim).unwrap())
            .collect()
    }

    #[test]
    fn matches_naive_on_small_input() {
        let points = [0.0, 0.0, 9.0, 1.0, -3.0, 4.0];
        let centers = [0.0, 0.0, 10.0, 0.0, -4.0, 4.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 2),
            &centers,
            &squared_norms(&centers, 2),
            2,
        );
        assert_eq!(got, naive(&points, &centers, 2));
    }

    #[test]
    fn exact_ties_prefer_first_center() {
        // Every point sits exactly between two duplicated centers; the
        // batch kernel must agree with the scan's first-wins rule.
        let centers = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0];
        let points = [3.0, 3.0, 1.0, 1.0, 5.0, 5.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 2),
            &centers,
            &squared_norms(&centers, 2),
            2,
        );
        assert_eq!(got, naive(&points, &centers, 2));
        assert_eq!(got[1].0, 0, "duplicate centers: lowest index wins");
    }

    #[test]
    fn exact_ties_prefer_first_center_in_the_tile_loop() {
        let centers = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0];
        let points = [3.0, 3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0];
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, 4),
            &centers,
            &squared_norms(&centers, 4),
            4,
        );
        assert_eq!(got, naive(&points, &centers, 4));
        assert_eq!(got[0].0, 0, "equidistant duplicates: lowest index wins");
    }

    #[test]
    fn spans_multiple_tiles() {
        // More points than POINT_TILE and more centers than CENTER_TILE.
        let dim = 5;
        let points: Vec<f64> = (0..(POINT_TILE * 2 + 7) * dim)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let centers: Vec<f64> = (0..(CENTER_TILE + 5) * dim)
            .map(|i| ((i * 53) % 97) as f64 - 48.0)
            .collect();
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, dim),
            &centers,
            &squared_norms(&centers, dim),
            dim,
        );
        assert_eq!(got, naive(&points, &centers, dim));
    }

    #[test]
    fn non_finite_centers_fall_back_to_scan() {
        // One NaN center and one +∞ center among finite ones: the batch
        // kernel must reproduce the scan's comparison semantics exactly,
        // NaN oddities included.
        let dim = 4;
        let mut centers: Vec<f64> = (0..6 * dim).map(|i| (i % 11) as f64).collect();
        centers[5] = f64::NAN;
        centers[4 * dim] = f64::INFINITY;
        let points: Vec<f64> = (0..40 * dim).map(|i| ((i * 13) % 17) as f64).collect();
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, dim),
            &centers,
            &squared_norms(&centers, dim),
            dim,
        );
        let want = naive(&points, &centers, dim);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
    }

    #[test]
    fn non_finite_points_fall_back_to_scan() {
        let dim = 4;
        let centers: Vec<f64> = (0..8 * dim).map(|i| (i % 7) as f64).collect();
        let mut points: Vec<f64> = (0..10 * dim).map(|i| ((i * 3) % 13) as f64).collect();
        points[2] = f64::NAN;
        points[5 * dim] = f64::NEG_INFINITY;
        let got = nearest_centers_batch(
            &points,
            &squared_norms(&points, dim),
            &centers,
            &squared_norms(&centers, dim),
            dim,
        );
        let want = naive(&points, &centers, dim);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
    }

    #[test]
    fn tiled_is_byte_identical_across_worker_counts() {
        // Enough rows that 4 workers each own multiple point tiles.
        let dim = 6;
        let n = POINT_TILE * 9 + 13;
        let points: Vec<f64> = (0..n * dim)
            .map(|i| ((i * 29) % 211) as f64 - 100.0)
            .collect();
        let centers: Vec<f64> = (0..70 * dim)
            .map(|i| ((i * 31) % 199) as f64 - 99.0)
            .collect();
        let pn = squared_norms(&points, dim);
        let cn = squared_norms(&centers, dim);
        let serial = nearest_centers_batch_tiled(&points, &pn, &centers, &cn, dim, 1);
        for workers in [2, 3, 4, 16, 1000] {
            let par = nearest_centers_batch_tiled(&points, &pn, &centers, &cn, dim, workers);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.0, b.0, "workers={workers}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "workers={workers}");
            }
        }
    }

    /// Regression: the margin must never let a bound that is a few ulps
    /// *above* the observed minimum (while its exact distance is the
    /// true minimum) be skipped. This is the catastrophic-cancellation
    /// shape — points far from the origin, centers a hair apart — where
    /// `‖x‖² − 2x·c + ‖c‖²` loses almost all its significant bits.
    #[test]
    fn margin_never_skips_the_true_nearest_under_cancellation() {
        let dim = 8;
        let offset = 1.0e7; // px2 ≈ 8e14: bound error swamps the gap
        for probe in 0..64 {
            let eps = (probe + 1) as f64 * 1.0e-9;
            let mut centers = Vec::new();
            // Center 0 marginally farther, center 1 the true nearest,
            // then decoys.
            for delta in [2.0 * eps, eps, 0.5, 1.0, 2.0] {
                let mut c = vec![offset; dim];
                c[0] += delta;
                centers.extend_from_slice(&c);
            }
            let p = vec![offset; dim];
            let got = nearest_centers_batch(
                &p,
                &squared_norms(&p, dim),
                &centers,
                &squared_norms(&centers, dim),
                dim,
            );
            let want = naive(&p, &centers, dim);
            assert_eq!(got[0].0, want[0].0, "eps={eps}");
            assert_eq!(got[0].1.to_bits(), want[0].1.to_bits(), "eps={eps}");
        }
    }

    proptest! {
        #[test]
        fn batch_is_bit_identical_to_scan(
            dim in 1usize..6,
            n in 1usize..150,
            k in 1usize..40,
            seed: u64,
        ) {
            // Deterministic pseudo-random fill; proptest drives the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 100.0
            };
            let points: Vec<f64> = (0..n * dim).map(|_| next()).collect();
            let centers: Vec<f64> = (0..k * dim).map(|_| next()).collect();
            let got = nearest_centers_batch(
                &points,
                &squared_norms(&points, dim),
                &centers,
                &squared_norms(&centers, dim),
                dim,
            );
            let want = naive(&points, &centers, dim);
            // Bit-identical: same index AND the exact same f64 distance.
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }

        #[test]
        fn batch_handles_clustered_near_ties(
            n in 1usize..80,
            seed: u64,
        ) {
            // Centers on a coarse grid and points snapped to midpoints
            // produce many exact ties.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 7) as f64
            };
            let centers: Vec<f64> = (0..16).map(|_| next()).collect();
            let points: Vec<f64> = (0..n * 2).map(|_| next() + 0.5).collect();
            let got = nearest_centers_batch(
                &points,
                &squared_norms(&points, 2),
                &centers,
                &squared_norms(&centers, 2),
                2,
            );
            let want = naive(&points, &centers, 2);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }

        /// The satellite d = 128 margin stress: adversarial near-tie
        /// grids at high dimension, where the `(d+8)·8·ε` margin is at
        /// its tightest relative to the accumulated rounding error.
        #[test]
        fn batch_is_bit_identical_at_d128_near_ties(
            n in 1usize..24,
            k in 2usize..40,
            grid in 1usize..5,
            offset in 0.0..1.0e6f64,
            seed: u64,
        ) {
            const DIM: usize = 128;
            let mut state = seed | 1;
            let mut next_u = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            // Coarse integer grid shifted far from the origin: many
            // exact ties plus heavy cancellation in the decomposition.
            let centers: Vec<f64> = (0..k * DIM)
                .map(|_| (next_u() % grid as u64) as f64 + offset)
                .collect();
            let points: Vec<f64> = (0..n * DIM)
                .map(|_| (next_u() % grid as u64) as f64 + 0.5 + offset)
                .collect();
            let got = nearest_centers_batch(
                &points,
                &squared_norms(&points, DIM),
                &centers,
                &squared_norms(&centers, DIM),
                DIM,
            );
            let want = naive(&points, &centers, DIM);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }

        /// Worker count must never leak into results, whatever the data.
        #[test]
        fn tiled_matches_serial_for_any_worker_count(
            dim in 1usize..8,
            n in 1usize..300,
            k in 1usize..50,
            workers in 1usize..9,
            seed: u64,
        ) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 100.0
            };
            let points: Vec<f64> = (0..n * dim).map(|_| next()).collect();
            let centers: Vec<f64> = (0..k * dim).map(|_| next()).collect();
            let pn = squared_norms(&points, dim);
            let cn = squared_norms(&centers, dim);
            let serial = nearest_centers_batch_tiled(&points, &pn, &centers, &cn, dim, 1);
            let par = nearest_centers_batch_tiled(&points, &pn, &centers, &cn, dim, workers);
            prop_assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
