//! A static k-d tree for exact nearest-center search.
//!
//! The paper's related work (§2) singles out tree-based nearest-neighbor
//! acceleration — "the mrkd-tree algorithm proposed by Pelleg et al." —
//! as an optimization that "can perfectly be added to our
//! implementation". This is that addition: centers are indexed once per
//! job (they change between jobs), and every point lookup descends the
//! tree with standard hypersphere/hyperplane pruning instead of scanning
//! all k centers.
//!
//! The search is exact: it returns the same center a linear scan would
//! (ties broken by the lower index). Queries report how many distance
//! evaluations they performed, so the §4 cost accounting stays truthful
//! when the index is enabled.

use crate::distance::squared_euclidean;

/// Leaf capacity: below this many points a subtree is scanned linearly.
const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
enum Node {
    /// `start..end` range into the permuted index array.
    Leaf { start: u32, end: u32 },
    /// Split along `dim` at `value`; left child is `self + 1`, right
    /// child is `right`.
    Internal { dim: u32, value: f64, right: u32 },
}

/// An immutable k-d tree over a flat row-major point buffer.
#[derive(Clone, Debug)]
pub struct KdTree {
    dim: usize,
    flat: Vec<f64>,
    order: Vec<u32>,
    nodes: Vec<Node>,
}

/// Result of one nearest-neighbor query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KdQuery {
    /// Index of the nearest point in the original buffer.
    pub index: usize,
    /// Squared distance to it.
    pub dist2: f64,
    /// Distance evaluations performed (≤ the number of indexed points;
    /// the honest unit for the paper's cost accounting).
    pub evaluations: u32,
}

impl KdTree {
    /// Builds a tree over `n = flat.len() / dim` points.
    ///
    /// # Panics
    /// Panics if `dim == 0`, the buffer is ragged, or there are no
    /// points.
    pub fn build(flat: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(flat.len() % dim, 0, "ragged point buffer");
        let n = flat.len() / dim;
        assert!(n > 0, "cannot index zero points");
        let mut tree = Self {
            dim,
            flat: flat.to_vec(),
            order: (0..n as u32).collect(),
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
        };
        tree.build_node(0, n);
        tree
    }

    fn coord(&self, point_idx: u32, d: usize) -> f64 {
        self.flat[point_idx as usize * self.dim + d]
    }

    /// Recursively builds the subtree over `order[start..end]`, pushing
    /// nodes in pre-order (left child directly follows its parent).
    fn build_node(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        if end - start <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return id;
        }
        // Split along the dimension with the widest spread.
        let mut split_dim = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for d in 0..self.dim {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &p in &self.order[start..end] {
                let v = self.coord(p, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let spread = hi - lo;
            if spread > best_spread {
                best_spread = spread;
                split_dim = d;
            }
        }
        if best_spread <= 0.0 {
            // All points coincide: no split possible.
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return id;
        }
        let mid = start + (end - start) / 2;
        let (before, _, _) =
            self.order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                self.flat[a as usize * self.dim + split_dim]
                    .partial_cmp(&self.flat[b as usize * self.dim + split_dim])
                    .expect("finite coordinates")
            });
        debug_assert_eq!(before.len(), mid - start);
        let split_value = self.coord(self.order[mid], split_dim);

        self.nodes.push(Node::Internal {
            dim: split_dim as u32,
            value: split_value,
            right: 0, // patched below
        });
        let left = self.build_node(start, mid);
        debug_assert_eq!(left, id + 1);
        let right = self.build_node(mid, end);
        if let Node::Internal { right: r, .. } = &mut self.nodes[id as usize] {
            *r = right;
        }
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the tree indexes no points (never constructed; `build`
    /// rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Exact nearest neighbor of `point`.
    ///
    /// # Panics
    /// Panics if `point.len() != dim`.
    pub fn nearest(&self, point: &[f64]) -> KdQuery {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        let mut best = KdQuery {
            index: usize::MAX,
            dist2: f64::INFINITY,
            evaluations: 0,
        };
        self.search(0, point, &mut best);
        best
    }

    fn search(&self, node: u32, point: &[f64], best: &mut KdQuery) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &p in &self.order[*start as usize..*end as usize] {
                    let row = &self.flat[p as usize * self.dim..(p as usize + 1) * self.dim];
                    let d2 = squared_euclidean(point, row);
                    best.evaluations += 1;
                    // Strict less-than plus index tie-break keeps results
                    // identical to a first-wins linear scan.
                    if d2 < best.dist2 || (d2 == best.dist2 && (p as usize) < best.index) {
                        best.dist2 = d2;
                        best.index = p as usize;
                    }
                }
            }
            Node::Internal { dim, value, right } => {
                let delta = point[*dim as usize] - value;
                let (near, far) = if delta < 0.0 {
                    (node + 1, *right)
                } else {
                    (*right, node + 1)
                };
                self.search(near, point, best);
                if delta * delta <= best.dist2 {
                    self.search(far, point, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_center_flat;
    use proptest::prelude::*;

    fn grid_points(n: usize, dim: usize) -> Vec<f64> {
        // Deterministic uniform-ish scatter via xorshift.
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n * dim)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 10_000) as f64 / 100.0 - 50.0
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan_on_grid() {
        for dim in [1usize, 2, 5, 10] {
            let flat = grid_points(100, dim);
            let tree = KdTree::build(&flat, dim);
            assert_eq!(tree.len(), 100);
            for q in 0..50 {
                let query: Vec<f64> = (0..dim)
                    .map(|d| (q * dim + d) as f64 * 0.7 - 20.0)
                    .collect();
                let kd = tree.nearest(&query);
                let (li, ld2) = nearest_center_flat(&query, &flat, dim).unwrap();
                assert_eq!(kd.index, li, "dim {dim} query {q}");
                assert!((kd.dist2 - ld2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prunes_most_evaluations_on_separated_data() {
        // 1000 well-spread points in R3: queries should touch far fewer
        // than all of them.
        let flat = grid_points(1000, 3);
        let tree = KdTree::build(&flat, 3);
        let mut total_evals = 0u32;
        for q in 0..100 {
            let query = [q as f64 - 50.0, (q * 3) as f64 % 70.0 - 35.0, 0.0];
            total_evals += tree.nearest(&query).evaluations;
        }
        let avg = total_evals as f64 / 100.0;
        assert!(avg < 400.0, "avg {avg} evaluations out of 1000 points");
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(&[3.0, 4.0], 2);
        let q = tree.nearest(&[0.0, 0.0]);
        assert_eq!(q.index, 0);
        assert!((q.dist2 - 25.0).abs() < 1e-12);
        assert_eq!(q.evaluations, 1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let flat = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let tree = KdTree::build(&flat, 2);
        let q = tree.nearest(&[1.0, 1.0]);
        assert_eq!(q.dist2, 0.0);
        assert!(q.index < 3);
    }

    #[test]
    fn all_identical_points_collapse_to_leaf() {
        let flat = vec![5.0; 3 * 40]; // 40 identical R3 points
        let tree = KdTree::build(&flat, 3);
        let q = tree.nearest(&[5.0, 5.0, 5.0]);
        assert_eq!(q.dist2, 0.0);
        assert_eq!(q.index, 0, "tie-break must pick the first index");
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_build_panics() {
        KdTree::build(&[], 2);
    }

    proptest! {
        /// The tree is exact: any query returns the linear-scan result.
        #[test]
        fn prop_matches_linear_scan(
            pts in proptest::collection::vec(-100.0..100.0f64, 2..400),
            qx in -150.0..150.0f64,
            qy in -150.0..150.0f64,
        ) {
            prop_assume!(pts.len() % 2 == 0);
            let tree = KdTree::build(&pts, 2);
            let kd = tree.nearest(&[qx, qy]);
            let (li, ld2) = nearest_center_flat(&[qx, qy], &pts, 2).unwrap();
            prop_assert_eq!(kd.index, li);
            prop_assert!((kd.dist2 - ld2).abs() < 1e-9);
            prop_assert!(kd.evaluations as usize <= pts.len() / 2);
        }
    }
}
