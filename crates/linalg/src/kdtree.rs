//! A static k-d tree for exact nearest-center search.
//!
//! The paper's related work (§2) singles out tree-based nearest-neighbor
//! acceleration — "the mrkd-tree algorithm proposed by Pelleg et al." —
//! as an optimization that "can perfectly be added to our
//! implementation". This is that addition: centers are indexed once per
//! job (they change between jobs), and every point lookup descends the
//! tree with standard hypersphere/hyperplane pruning instead of scanning
//! all k centers.
//!
//! The search is exact: it returns the same center a linear scan would
//! (ties broken by the lower index). Queries report how many distance
//! evaluations they performed, so the §4 cost accounting stays truthful
//! when the index is enabled.
//!
//! Non-finite coordinates break both the spatial splits (NaN has no
//! order) and the hypersphere pruning test, and the naive scan's
//! comparison semantics around NaN are what the mapper bit-identity
//! contract pins. A buffer containing any non-finite coordinate
//! therefore *poisons* the tree at build time, and a poisoned tree — or
//! any query with a non-finite coordinate — answers with the reference
//! linear scan itself (charging all `n` evaluations), so the result is
//! the scan's by construction.

use crate::distance::{nearest_center_flat, squared_euclidean};

/// Leaf capacity: below this many points a subtree is scanned linearly.
const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
enum Node {
    /// `start..end` range into the permuted index array.
    Leaf { start: u32, end: u32 },
    /// Split along `dim` at `value`; left child is `self + 1`, right
    /// child is `right`.
    Internal { dim: u32, value: f64, right: u32 },
}

/// An immutable k-d tree over a flat row-major point buffer.
#[derive(Clone, Debug)]
pub struct KdTree {
    dim: usize,
    flat: Vec<f64>,
    order: Vec<u32>,
    /// The points permuted into tree order (`arranged[i] = flat[order[i]]`
    /// row-wise), so leaf scans read contiguous memory instead of
    /// gathering through `order`. `flat` stays in original order for the
    /// poisoned/non-finite linear-scan fallback, whose semantics depend
    /// on scan order.
    arranged: Vec<f64>,
    nodes: Vec<Node>,
    /// Set when the build saw a non-finite coordinate; queries then run
    /// the reference linear scan instead of descending.
    poisoned: bool,
}

/// Result of one nearest-neighbor query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KdQuery {
    /// Index of the nearest point in the original buffer.
    pub index: usize,
    /// Squared distance to it.
    pub dist2: f64,
    /// Distance evaluations performed (≤ the number of indexed points;
    /// the honest unit for the paper's cost accounting).
    pub evaluations: u32,
}

impl KdTree {
    /// Builds a tree over `n = flat.len() / dim` points.
    ///
    /// # Panics
    /// Panics if `dim == 0`, the buffer is ragged, or there are no
    /// points.
    pub fn build(flat: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(flat.len() % dim, 0, "ragged point buffer");
        let n = flat.len() / dim;
        assert!(n > 0, "cannot index zero points");
        let poisoned = flat.iter().any(|x| !x.is_finite());
        let mut tree = Self {
            dim,
            flat: flat.to_vec(),
            order: (0..n as u32).collect(),
            arranged: Vec::new(),
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
            poisoned,
        };
        if poisoned {
            // One all-covering leaf; `nearest` never descends anyway.
            tree.nodes.push(Node::Leaf {
                start: 0,
                end: n as u32,
            });
        } else {
            tree.build_node(0, n);
        }
        tree.arranged = tree
            .order
            .iter()
            .flat_map(|&p| {
                tree.flat[p as usize * dim..(p as usize + 1) * dim]
                    .iter()
                    .copied()
            })
            .collect();
        tree
    }

    /// True when the indexed buffer contained a non-finite coordinate
    /// and every query answers via the linear-scan fallback.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn coord(&self, point_idx: u32, d: usize) -> f64 {
        self.flat[point_idx as usize * self.dim + d]
    }

    /// Recursively builds the subtree over `order[start..end]`, pushing
    /// nodes in pre-order (left child directly follows its parent).
    fn build_node(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        if end - start <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return id;
        }
        // Split along the dimension with the widest spread.
        let mut split_dim = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for d in 0..self.dim {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &p in &self.order[start..end] {
                let v = self.coord(p, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let spread = hi - lo;
            if spread > best_spread {
                best_spread = spread;
                split_dim = d;
            }
        }
        if best_spread <= 0.0 {
            // All points coincide: no split possible.
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return id;
        }
        let mid = start + (end - start) / 2;
        let (before, _, _) =
            self.order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                self.flat[a as usize * self.dim + split_dim]
                    .partial_cmp(&self.flat[b as usize * self.dim + split_dim])
                    .expect("finite coordinates")
            });
        debug_assert_eq!(before.len(), mid - start);
        let split_value = self.coord(self.order[mid], split_dim);

        self.nodes.push(Node::Internal {
            dim: split_dim as u32,
            value: split_value,
            right: 0, // patched below
        });
        let left = self.build_node(start, mid);
        debug_assert_eq!(left, id + 1);
        let right = self.build_node(mid, end);
        if let Node::Internal { right: r, .. } = &mut self.nodes[id as usize] {
            *r = right;
        }
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the tree indexes no points (never constructed; `build`
    /// rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Exact nearest neighbor of `point`.
    ///
    /// # Panics
    /// Panics if `point.len() != dim`.
    pub fn nearest(&self, point: &[f64]) -> KdQuery {
        self.nearest_inner(point, None)
    }

    /// Exact nearest neighbor of `point`, warm-started from a candidate.
    ///
    /// `hint` (an index into the original buffer, e.g. the previous
    /// query's answer — consecutive cached points usually share a
    /// cluster) seeds the running best with that row's exact distance,
    /// so pruning starts with a finite bound at the root instead of
    /// `∞`. The *answer* is identical to [`KdTree::nearest`] — the seed
    /// is a valid candidate, every strictly-closer row still wins, and
    /// the `<=` plane test keeps equal-distance subtrees so lower-index
    /// ties are still found. Only `evaluations` differs (usually far
    /// smaller), so callers on the cost-neutral speed path use this and
    /// callers that charge actual evaluations use `nearest`.
    ///
    /// # Panics
    /// Panics if `point.len() != dim` or `hint` is out of range.
    pub fn nearest_from(&self, point: &[f64], hint: usize) -> KdQuery {
        self.nearest_inner(point, Some(hint))
    }

    fn nearest_inner(&self, point: &[f64], hint: Option<usize>) -> KdQuery {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        if self.poisoned || point.iter().any(|x| !x.is_finite()) {
            // Non-finite geometry: answer with the reference scan so the
            // result (NaN comparison semantics included) is the scan's.
            let (index, dist2) =
                nearest_center_flat(point, &self.flat, self.dim).expect("non-empty tree");
            return KdQuery {
                index,
                dist2,
                evaluations: self.order.len() as u32,
            };
        }
        let mut best = match hint {
            Some(h) => {
                let row = &self.flat[h * self.dim..(h + 1) * self.dim];
                KdQuery {
                    index: h,
                    dist2: leaf_dist2(point, row),
                    evaluations: 1,
                }
            }
            None => KdQuery {
                index: usize::MAX,
                dist2: f64::INFINITY,
                evaluations: 0,
            },
        };
        // Iterative descent replicating the recursive traversal exactly:
        // descend the near side, deferring each far child (with its
        // plane distance) on a stack; popping revisits the deferred
        // fars in the same order — and against the same running best —
        // as the recursion's post-near checks, so evaluation counts are
        // identical too. Midpoint splits keep the tree balanced, so
        // depth (= stack use) is at most ⌈log2(u32::MAX / LEAF_SIZE)⌉ =
        // 29 deferred entries.
        let mut stack = [(0u32, 0.0f64); 32];
        let mut sp = 0usize;
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    let (s, e) = (*start as usize, *end as usize);
                    let rows = &self.arranged[s * self.dim..e * self.dim];
                    for (off, row) in rows.chunks_exact(self.dim).enumerate() {
                        let d2 = leaf_dist2(point, row);
                        best.evaluations += 1;
                        let p = self.order[s + off] as usize;
                        // Strict less-than plus index tie-break keeps
                        // results identical to a first-wins linear scan.
                        if d2 < best.dist2 || (d2 == best.dist2 && p < best.index) {
                            best.dist2 = d2;
                            best.index = p;
                        }
                    }
                    loop {
                        if sp == 0 {
                            return best;
                        }
                        sp -= 1;
                        let (far, delta2) = stack[sp];
                        if delta2 <= best.dist2 {
                            node = far;
                            break;
                        }
                    }
                }
                Node::Internal { dim, value, right } => {
                    let delta = point[*dim as usize] - value;
                    let (near, far) = if delta < 0.0 {
                        (node + 1, *right)
                    } else {
                        (*right, node + 1)
                    };
                    stack[sp] = (far, delta * delta);
                    sp += 1;
                    node = near;
                }
            }
        }
    }
}

/// Leaf-scan distance: low dimensions get an unrolled form whose
/// operation order — and therefore every result bit — matches
/// [`squared_euclidean`]'s left-to-right accumulation (`0.0 + d²` is
/// bit-identical to `d²` because a square is never `-0.0`).
#[inline(always)]
fn leaf_dist2(a: &[f64], b: &[f64]) -> f64 {
    match (a.len(), b.len()) {
        (1, 1) => {
            let d = a[0] - b[0];
            d * d
        }
        (2, 2) => {
            let dx = a[0] - b[0];
            let dy = a[1] - b[1];
            dx * dx + dy * dy
        }
        (3, 3) => {
            let dx = a[0] - b[0];
            let dy = a[1] - b[1];
            let dz = a[2] - b[2];
            (dx * dx + dy * dy) + dz * dz
        }
        _ => squared_euclidean(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_center_flat;
    use proptest::prelude::*;

    fn grid_points(n: usize, dim: usize) -> Vec<f64> {
        // Deterministic uniform-ish scatter via xorshift.
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n * dim)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 10_000) as f64 / 100.0 - 50.0
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan_on_grid() {
        for dim in [1usize, 2, 5, 10] {
            let flat = grid_points(100, dim);
            let tree = KdTree::build(&flat, dim);
            assert_eq!(tree.len(), 100);
            for q in 0..50 {
                let query: Vec<f64> = (0..dim)
                    .map(|d| (q * dim + d) as f64 * 0.7 - 20.0)
                    .collect();
                let kd = tree.nearest(&query);
                let (li, ld2) = nearest_center_flat(&query, &flat, dim).unwrap();
                assert_eq!(kd.index, li, "dim {dim} query {q}");
                assert!((kd.dist2 - ld2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prunes_most_evaluations_on_separated_data() {
        // 1000 well-spread points in R3: queries should touch far fewer
        // than all of them.
        let flat = grid_points(1000, 3);
        let tree = KdTree::build(&flat, 3);
        let mut total_evals = 0u32;
        for q in 0..100 {
            let query = [q as f64 - 50.0, (q * 3) as f64 % 70.0 - 35.0, 0.0];
            total_evals += tree.nearest(&query).evaluations;
        }
        let avg = total_evals as f64 / 100.0;
        assert!(avg < 400.0, "avg {avg} evaluations out of 1000 points");
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(&[3.0, 4.0], 2);
        let q = tree.nearest(&[0.0, 0.0]);
        assert_eq!(q.index, 0);
        assert!((q.dist2 - 25.0).abs() < 1e-12);
        assert_eq!(q.evaluations, 1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let flat = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let tree = KdTree::build(&flat, 2);
        let q = tree.nearest(&[1.0, 1.0]);
        assert_eq!(q.dist2, 0.0);
        assert!(q.index < 3);
    }

    #[test]
    fn all_identical_points_collapse_to_leaf() {
        let flat = vec![5.0; 3 * 40]; // 40 identical R3 points
        let tree = KdTree::build(&flat, 3);
        let q = tree.nearest(&[5.0, 5.0, 5.0]);
        assert_eq!(q.dist2, 0.0);
        assert_eq!(q.index, 0, "tie-break must pick the first index");
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_build_panics() {
        KdTree::build(&[], 2);
    }

    #[test]
    fn non_finite_points_poison_the_tree_into_scan_fallback() {
        // NaN and ±∞ in the indexed buffer: the tree must answer with
        // the exact linear-scan result (its NaN semantics included).
        let mut flat: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        flat[3] = f64::NAN;
        flat[10] = f64::INFINITY;
        let tree = KdTree::build(&flat, 2);
        assert!(tree.is_poisoned());
        for q in 0..15 {
            let query = [q as f64 * 0.4, (q * 2) as f64 * 0.3];
            let kd = tree.nearest(&query);
            let (li, ld2) = nearest_center_flat(&query, &flat, 2).unwrap();
            assert_eq!(kd.index, li);
            assert_eq!(kd.dist2.to_bits(), ld2.to_bits());
            assert_eq!(kd.evaluations, 10, "fallback charges a full scan");
        }
    }

    #[test]
    fn non_finite_query_falls_back_to_scan() {
        let flat: Vec<f64> = (0..30).map(|i| (i % 11) as f64).collect();
        let tree = KdTree::build(&flat, 2);
        assert!(!tree.is_poisoned());
        for query in [
            [f64::NAN, 1.0],
            [1.0, f64::NAN],
            [f64::INFINITY, 0.0],
            [f64::NEG_INFINITY, f64::NAN],
        ] {
            let kd = tree.nearest(&query);
            let (li, ld2) = nearest_center_flat(&query, &flat, 2).unwrap();
            assert_eq!(kd.index, li);
            assert_eq!(kd.dist2.to_bits(), ld2.to_bits());
        }
    }

    #[test]
    fn seeded_query_matches_unseeded_from_any_hint() {
        let flat = grid_points(200, 2);
        let tree = KdTree::build(&flat, 2);
        for q in 0..40 {
            let query = [q as f64 * 1.3 - 25.0, (q * 7 % 90) as f64 - 45.0];
            let plain = tree.nearest(&query);
            for hint in [0, 1, 57, 199] {
                let seeded = tree.nearest_from(&query, hint);
                assert_eq!(seeded.index, plain.index, "hint {hint} query {q}");
                assert_eq!(seeded.dist2.to_bits(), plain.dist2.to_bits());
            }
        }
    }

    proptest! {
        /// The tree is exact: any query returns the linear-scan result.
        #[test]
        fn prop_matches_linear_scan(
            pts in proptest::collection::vec(-100.0..100.0f64, 2..400),
            qx in -150.0..150.0f64,
            qy in -150.0..150.0f64,
        ) {
            prop_assume!(pts.len() % 2 == 0);
            let tree = KdTree::build(&pts, 2);
            let kd = tree.nearest(&[qx, qy]);
            let (li, ld2) = nearest_center_flat(&[qx, qy], &pts, 2).unwrap();
            prop_assert_eq!(kd.index, li);
            prop_assert!((kd.dist2 - ld2).abs() < 1e-9);
            prop_assert!(kd.evaluations as usize <= pts.len() / 2);
        }

        /// The mapper-backend contract: coarse integer grids with
        /// duplicated points and midpoint queries generate dense exact
        /// ties, and the tree must resolve every one of them exactly
        /// like the first-wins linear scan — index and distance bits.
        #[test]
        fn prop_exact_tie_grids_are_bit_identical_to_scan(
            dim in 1usize..5,
            k in 1usize..60,
            grid in 1usize..5,
            n in 1usize..40,
            seed: u64,
        ) {
            let mut state = seed | 1;
            let mut next_u = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            let pts: Vec<f64> = (0..k * dim)
                .map(|_| (next_u() % grid as u64) as f64)
                .collect();
            let tree = KdTree::build(&pts, dim);
            for _ in 0..n {
                let q: Vec<f64> = (0..dim)
                    .map(|_| (next_u() % grid as u64) as f64 + 0.5)
                    .collect();
                let kd = tree.nearest(&q);
                let (li, ld2) = nearest_center_flat(&q, &pts, dim).unwrap();
                prop_assert_eq!(kd.index, li);
                prop_assert_eq!(kd.dist2.to_bits(), ld2.to_bits());
                // The warm-started query must resolve the same dense
                // ties identically from any seed.
                let seeded = tree.nearest_from(&q, (next_u() % k as u64) as usize);
                prop_assert_eq!(seeded.index, li);
                prop_assert_eq!(seeded.dist2.to_bits(), ld2.to_bits());
            }
        }
    }
}
