//! Ordinary least squares on 1-D data.
//!
//! Figure 2 of the paper fits a line (`64·x − 42.67`) through the
//! boundary between succeeded and failed TestClusters jobs to estimate
//! the reducer's per-point heap requirement. The `repro fig2` harness
//! performs the same fit with this module.

/// Result of fitting `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`; `1.0` for a perfect fit.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a least-squares line through `(x, y)` pairs.
    ///
    /// Returns `None` when fewer than two points are given or when all x
    /// values coincide (vertical line; slope undefined).
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 {
            1.0 // constant y: the horizontal fit is exact
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 7.0)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept + 7.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!((fit.predict(100.0) - 293.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = LinearFit::fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        // all x equal: vertical line
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn noisy_fit_is_close() {
        // y = 64 x - 42.67 with deterministic "noise" — Figure 2's shape.
        let pts: Vec<(f64, f64)> = (4..=16)
            .map(|i| {
                let x = i as f64;
                (x, 64.0 * x - 42.67 + if i % 2 == 0 { 1.5 } else { -1.5 })
            })
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 64.0).abs() < 0.5);
        assert!((fit.intercept + 42.67).abs() < 5.0);
        assert!(fit.r_squared > 0.99);
    }

    proptest! {
        #[test]
        fn r_squared_in_unit_interval(
            pts in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..50),
        ) {
            prop_assume!(pts.windows(2).any(|w| w[0].0 != w[1].0));
            if let Some(fit) = LinearFit::fit(&pts) {
                prop_assert!(fit.r_squared >= -1e-9);
                prop_assert!(fit.r_squared <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn fit_recovers_arbitrary_line(slope in -100.0..100.0f64, intercept in -100.0..100.0f64) {
            let pts: Vec<(f64, f64)> =
                (0..20).map(|i| (i as f64 * 0.5, slope * i as f64 * 0.5 + intercept)).collect();
            let fit = LinearFit::fit(&pts).unwrap();
            prop_assert!((fit.slope - slope).abs() < 1e-6);
            prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        }
    }
}
