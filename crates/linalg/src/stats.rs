//! Welford running statistics with parallel merge.
//!
//! Projections must be normalized to zero mean and unit variance before
//! the Anderson–Darling test (Algorithm 4's "Normalize vector"). Map
//! tasks compute partial statistics over their split and the framework
//! merges them, so the accumulator must be associative: this is Chan et
//! al.'s parallel variant of Welford's algorithm.

/// Numerically stable running mean / variance / min / max accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds every observation of a slice in.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges another accumulator (Chan's parallel update). The result is
    /// identical (up to rounding) to pushing both observation streams into
    /// one accumulator.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by n); `0.0` for fewer than 1
    /// observation.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n−1); `0.0` for fewer than 2
    /// observations.
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Population standard deviation.
    pub fn stddev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Normalizes a sample in place to zero mean and unit *sample* standard
/// deviation, as required before the Anderson–Darling test.
///
/// Returns `false` (leaving the data untouched) when the sample has fewer
/// than two points or zero variance — the test cannot be applied to a
/// constant sample.
pub fn normalize_in_place(xs: &mut [f64]) -> bool {
    let mut stats = RunningStats::new();
    stats.push_all(xs);
    let sd = stats.stddev_sample();
    if xs.len() < 2 || sd == 0.0 || !sd.is_finite() {
        return false;
    }
    let mean = stats.mean();
    for x in xs.iter_mut() {
        *x = (*x - mean) / sd;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        s.push_all(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance_population() - 4.0).abs() < 1e-12);
        assert!((s.stddev_population() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_inert() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance_sample(), 0.0);
        let mut t = RunningStats::new();
        t.push(1.0);
        let before = t;
        t.merge(&s);
        assert_eq!(t, before);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push_all(&[1.0, 2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance_sample(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn normalize_produces_standard_sample() {
        let mut xs = vec![10.0, 12.0, 14.0, 16.0, 18.0];
        assert!(normalize_in_place(&mut xs));
        let mut s = RunningStats::new();
        s.push_all(&xs);
        assert!(s.mean().abs() < 1e-12);
        assert!((s.stddev_sample() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rejects_constant_sample() {
        let mut xs = vec![5.0; 10];
        assert!(!normalize_in_place(&mut xs));
        assert_eq!(xs, vec![5.0; 10]);
        let mut one = vec![3.0];
        assert!(!normalize_in_place(&mut one));
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-1e3..1e3f64, 1..50),
            b in proptest::collection::vec(-1e3..1e3f64, 1..50),
        ) {
            let mut merged = RunningStats::new();
            merged.push_all(&a);
            let mut other = RunningStats::new();
            other.push_all(&b);
            merged.merge(&other);

            let mut seq = RunningStats::new();
            seq.push_all(&a);
            seq.push_all(&b);

            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((merged.variance_sample() - seq.variance_sample()).abs() < 1e-5);
            prop_assert_eq!(merged.min(), seq.min());
            prop_assert_eq!(merged.max(), seq.max());
        }

        #[test]
        fn variance_never_negative(xs in proptest::collection::vec(-1e6..1e6f64, 0..100)) {
            let mut s = RunningStats::new();
            s.push_all(&xs);
            prop_assert!(s.variance_population() >= 0.0);
            prop_assert!(s.variance_sample() >= 0.0);
        }

        #[test]
        fn mean_within_bounds(xs in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
            let mut s = RunningStats::new();
            s.push_all(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
