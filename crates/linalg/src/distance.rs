//! Euclidean distance kernels and nearest-center search.
//!
//! The paper's §4 cost model counts *distance computations*: every
//! MapReduce job in the G-means pipeline performs `O(nk)` of them to
//! assign points to their nearest center. These kernels are the single
//! hottest code path of the whole reproduction, so they take plain
//! slices, avoid bounds checks through `zip`, and let the caller count
//! invocations.

/// Squared Euclidean distance between two coordinate slices.
///
/// Comparisons between distances are order-preserving under squaring, so
/// nearest-center search uses this and skips the `sqrt`.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths; in
/// release builds the shorter length wins, which is never exercised by
/// this workspace because all call sites pass same-dimension rows.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Finds the nearest center to `point` among `centers` (rows of equal
/// dimension), returning `(index, squared_distance)`.
///
/// Returns `None` when `centers` is empty.
#[inline]
pub fn nearest_center<'a, I>(point: &[f64], centers: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centers.into_iter().enumerate() {
        let d = squared_euclidean(point, c);
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((i, d)),
        }
    }
    best
}

/// Nearest-center search over a flat row-major center buffer.
///
/// `centers.len()` must be a multiple of `dim`. Returns
/// `(index, squared_distance)`, or `None` if there are no centers.
#[inline]
pub fn nearest_center_flat(point: &[f64], centers: &[f64], dim: usize) -> Option<(usize, f64)> {
    debug_assert_eq!(centers.len() % dim, 0, "ragged center buffer");
    nearest_center(point, centers.chunks_exact(dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn squared_euclidean_basic() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = [1.5, -2.5, 7.0];
        assert_eq!(squared_euclidean(&p, &p), 0.0);
    }

    #[test]
    fn nearest_center_picks_minimum() {
        let centers: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![2.0, 2.0]];
        let (idx, d) = nearest_center(&[1.9, 2.1], centers.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(idx, 2);
        assert!(d < 0.03);
    }

    #[test]
    fn nearest_center_empty_is_none() {
        assert_eq!(nearest_center(&[1.0], std::iter::empty()), None);
        assert_eq!(nearest_center_flat(&[1.0], &[], 1), None);
    }

    #[test]
    fn nearest_center_ties_prefer_first() {
        // Equidistant centers: the first one encountered wins, which makes
        // assignment deterministic across runs.
        let centers: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0]];
        let (idx, _) = nearest_center(&[0.0], centers.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn flat_matches_rowwise() {
        let flat = [0.0, 0.0, 5.0, 5.0, -3.0, 1.0];
        let rows: Vec<&[f64]> = flat.chunks_exact(2).collect();
        let p = [-2.0, 0.5];
        assert_eq!(
            nearest_center_flat(&p, &flat, 2),
            nearest_center(&p, rows.iter().copied())
        );
    }

    proptest! {
        #[test]
        fn symmetry(a in proptest::collection::vec(-1e6..1e6f64, 1..8)) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            prop_assert!((squared_euclidean(&a, &b) - squared_euclidean(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn non_negative(
            a in proptest::collection::vec(-1e6..1e6f64, 4),
            b in proptest::collection::vec(-1e6..1e6f64, 4),
        ) {
            prop_assert!(squared_euclidean(&a, &b) >= 0.0);
        }

        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-1e3..1e3f64, 3),
            b in proptest::collection::vec(-1e3..1e3f64, 3),
            c in proptest::collection::vec(-1e3..1e3f64, 3),
        ) {
            let ab = euclidean(&a, &b);
            let bc = euclidean(&b, &c);
            let ac = euclidean(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn nearest_center_is_argmin(
            point in proptest::collection::vec(-100.0..100.0f64, 3),
            centers in proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, 3), 1..10),
        ) {
            let (idx, d) =
                nearest_center(&point, centers.iter().map(|c| c.as_slice())).unwrap();
            for c in &centers {
                prop_assert!(squared_euclidean(&point, c) >= d - 1e-12);
            }
            prop_assert!((squared_euclidean(&point, &centers[idx]) - d).abs() < 1e-12);
        }
    }
}
