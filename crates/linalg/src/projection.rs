//! Projection of points onto the line joining two cluster centers.
//!
//! G-means decides whether to split a cluster by reducing its points to
//! one dimension: project every point onto `v = c1 − c2`, "the direction
//! that k-means believes is important for clustering" (paper §2), then
//! test the projections for normality. The scalar projection used by the
//! original algorithm is `x' = ⟨x, v⟩ / ‖v‖²`; any affine rescaling of
//! the projections is irrelevant because the Anderson–Darling test input
//! is normalized to zero mean and unit variance first.

/// Scalar projection of `point` onto the direction `v`, scaled by
/// `1 / ‖v‖²` as in the original G-means formulation.
///
/// Returns `0.0` when `v` is the zero vector (degenerate center pair:
/// both candidate children collapsed onto the same coordinates). A
/// constant projection vector is then rejected upstream as "not enough
/// information to split", which matches the conservative behaviour of
/// keeping the parent center.
#[inline]
pub fn project_onto_segment(point: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(point.len(), v.len(), "dimension mismatch");
    let mut dot = 0.0;
    let mut norm2 = 0.0;
    for (x, d) in point.iter().zip(v) {
        dot += x * d;
        norm2 += d * d;
    }
    if norm2 == 0.0 {
        0.0
    } else {
        dot / norm2
    }
}

/// Pre-computed projector for one center pair `(c1, c2)`.
///
/// The TestClusters mapper projects every point of a cluster onto the
/// same vector, so the direction and its squared norm are computed once
/// per pair at task setup (mirroring the `Setup` procedure of Algorithm
/// 3) and reused per point.
#[derive(Clone, Debug)]
pub struct SegmentProjector {
    direction: Vec<f64>,
    inv_norm2: f64,
}

impl SegmentProjector {
    /// Builds the projector for the vector `c1 − c2`.
    ///
    /// # Panics
    /// Panics if the centers have different dimensions.
    pub fn new(c1: &[f64], c2: &[f64]) -> Self {
        assert_eq!(c1.len(), c2.len(), "dimension mismatch");
        let direction: Vec<f64> = c1.iter().zip(c2).map(|(a, b)| a - b).collect();
        let norm2: f64 = direction.iter().map(|d| d * d).sum();
        let inv_norm2 = if norm2 == 0.0 { 0.0 } else { 1.0 / norm2 };
        Self {
            direction,
            inv_norm2,
        }
    }

    /// True if the two centers coincide, making the projection direction
    /// degenerate.
    pub fn is_degenerate(&self) -> bool {
        self.inv_norm2 == 0.0
    }

    /// The direction vector `c1 − c2`.
    pub fn direction(&self) -> &[f64] {
        &self.direction
    }

    /// Projects one point.
    #[inline]
    pub fn project(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.direction.len(), "dimension mismatch");
        let mut dot = 0.0;
        for (x, d) in point.iter().zip(&self.direction) {
            dot += x * d;
        }
        dot * self.inv_norm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn projection_along_axis() {
        // v = (2, 0): projection is x / 2.
        let p = project_onto_segment(&[4.0, 99.0], &[2.0, 0.0]);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_direction_is_zero() {
        assert_eq!(project_onto_segment(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
        let proj = SegmentProjector::new(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(proj.is_degenerate());
        assert_eq!(proj.project(&[5.0, -3.0]), 0.0);
    }

    #[test]
    fn projector_matches_free_function() {
        let c1 = [3.0, -1.0, 2.0];
        let c2 = [0.5, 0.5, 0.5];
        let v: Vec<f64> = c1.iter().zip(&c2).map(|(a, b)| a - b).collect();
        let proj = SegmentProjector::new(&c1, &c2);
        let p = [1.0, 2.0, 3.0];
        assert!((proj.project(&p) - project_onto_segment(&p, &v)).abs() < 1e-12);
    }

    #[test]
    fn centers_project_to_unit_separation() {
        // The two centers themselves must land a distance 1 apart on the
        // projected axis (the direction is scaled by 1/‖v‖²).
        let c1 = [4.0, 0.0];
        let c2 = [1.0, 4.0];
        let proj = SegmentProjector::new(&c1, &c2);
        let gap = proj.project(&c1) - proj.project(&c2);
        assert!((gap - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn projection_is_linear(
            a in proptest::collection::vec(-100.0..100.0f64, 3),
            b in proptest::collection::vec(-100.0..100.0f64, 3),
            v in proptest::collection::vec(-100.0..100.0f64, 3),
        ) {
            prop_assume!(v.iter().map(|x| x * x).sum::<f64>() > 1e-6);
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let lhs = project_onto_segment(&sum, &v);
            let rhs = project_onto_segment(&a, &v) + project_onto_segment(&b, &v);
            prop_assert!((lhs - rhs).abs() < 1e-6);
        }

        #[test]
        fn orthogonal_component_is_invisible(t in -100.0..100.0f64) {
            // Moving a point orthogonally to v must not change its projection.
            let v = [1.0, 1.0];
            let ortho = [t, -t];
            let base = [3.0, 7.0];
            let moved = [base[0] + ortho[0], base[1] + ortho[1]];
            let d = project_onto_segment(&base, &v) - project_onto_segment(&moved, &v);
            prop_assert!(d.abs() < 1e-9);
        }
    }
}
