//! Owned point and flat dataset representations.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense point in `R^d`.
///
/// `Point` is the ergonomic unit the public APIs exchange (cluster
/// centers, generated samples). Inner loops that sweep millions of points
/// use [`Dataset`] and raw `&[f64]` rows instead, so `Point` does not try
/// to be clever about storage: it owns a `Vec<f64>`.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Self { coords }
    }

    /// The origin of `R^dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// Dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinates as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consumes the point, returning its coordinate vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.coords
    }

    /// Adds `other` coordinate-wise into `self`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &[f64]) {
        assert_eq!(self.dim(), other.len(), "dimension mismatch");
        for (a, b) in self.coords.iter_mut().zip(other) {
            *a += b;
        }
    }

    /// Subtracts `other` coordinate-wise, returning the difference vector.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn sub(&self, other: &Point) -> Point {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Point::new(
            self.coords
                .iter()
                .zip(&other.coords)
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Scales every coordinate by `s`.
    pub fn scale(&mut self, s: f64) {
        for c in &mut self.coords {
            *c *= s;
        }
    }

    /// Dot product with another vector of the same dimension.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &[f64]) -> f64 {
        assert_eq!(self.dim(), other.len(), "dimension mismatch");
        self.coords.iter().zip(other).map(|(a, b)| a * b).sum()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// True if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl IndexMut<usize> for Point {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

/// A row-major, flat collection of points sharing one dimensionality.
///
/// All serial algorithms operate on a `Dataset` because iterating a flat
/// `Vec<f64>` in row order is measurably faster than chasing one heap
/// allocation per point. Rows are exposed as `&[f64]` slices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of points in `R^dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty dataset with storage reserved for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer length not a multiple of dim"
        );
        Self { dim, data }
    }

    /// Builds a dataset from an iterator of points.
    ///
    /// # Panics
    /// Panics if any point has a different dimensionality.
    pub fn from_points<I>(dim: usize, points: I) -> Self
    where
        I: IntoIterator<Item = Point>,
    {
        let mut ds = Dataset::new(dim);
        for p in points {
            ds.push(p.as_slice());
        }
        ds
    }

    /// Dimensionality of every point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one point given as a coordinate slice.
    ///
    /// # Panics
    /// Panics if `coords.len() != dim`.
    pub fn push(&mut self, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(coords);
    }

    /// Row `i` as a coordinate slice.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Copies row `i` into an owned [`Point`].
    pub fn point(&self, i: usize) -> Point {
        Point::from(self.row(i))
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        self.data.extend_from_slice(&other.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let mut p = Point::new(vec![1.0, 2.0, 3.0]);
        p.add_assign(&[1.0, 1.0, 1.0]);
        assert_eq!(p.as_slice(), &[2.0, 3.0, 4.0]);
        p.scale(0.5);
        assert_eq!(p.as_slice(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn point_sub_and_dot() {
        let a = Point::new(vec![3.0, 4.0]);
        let b = Point::new(vec![1.0, 1.0]);
        let d = a.sub(&b);
        assert_eq!(d.as_slice(), &[2.0, 3.0]);
        assert_eq!(d.dot(&[1.0, 1.0]), 5.0);
    }

    #[test]
    fn point_norms() {
        let p = Point::new(vec![3.0, 4.0]);
        assert_eq!(p.norm_squared(), 25.0);
        assert_eq!(p.norm(), 5.0);
    }

    #[test]
    fn zeros_has_zero_norm() {
        assert_eq!(Point::zeros(7).norm(), 0.0);
        assert_eq!(Point::zeros(7).dim(), 7);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new(vec![1.0, 2.0]).is_finite());
        assert!(!Point::new(vec![1.0, f64::NAN]).is_finite());
        assert!(!Point::new(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn dataset_push_and_row() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0]);
        ds.push(&[3.0, 4.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[1.0, 2.0]);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert_eq!(ds.rows().count(), 2);
    }

    #[test]
    fn dataset_from_flat_round_trip() {
        let ds = Dataset::from_flat(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1).as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dataset_push_wrong_dim_panics() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn dataset_from_flat_ragged_panics() {
        let _ = Dataset::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dataset_extend_from() {
        let mut a = Dataset::from_flat(2, vec![1.0, 2.0]);
        let b = Dataset::from_flat(2, vec![3.0, 4.0]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn dataset_from_points() {
        let ds = Dataset::from_points(
            2,
            vec![Point::new(vec![0.0, 1.0]), Point::new(vec![2.0, 3.0])],
        );
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[0.0, 1.0]);
    }
}
