//! Triangle-inequality center pruning for nearest-center search.
//!
//! Elkan-style acceleration keeps per-point bounds across iterations, but
//! the paper's mappers are stateless — no point membership is persisted
//! between jobs (§3). This pruner therefore keeps only *per-job* state
//! derived from the centers themselves: for every `stride`-th "anchor"
//! center `c_a`, the list of `(d²(c_a, c_j), j)` pairs over the
//! remaining centers, sorted by distance ascending (the "sort-means"
//! layout). A query then runs in two phases:
//!
//! 1. **prepass** — evaluate every `stride`-th center exactly; the best
//!    of those becomes the *anchor* `a` and yields the initial radius.
//! 2. **sorted scan** — walk the anchor's sorted row. By the triangle
//!    inequality, `d(x, c_j) ≥ d(a, c_j) − d(x, a)`, so once
//!    `d(a, c_j) > d(x, a) + r` every *remaining* entry of the ascending
//!    row is provably farther than the current best and the scan stops.
//!
//! The break test is carried out on *squared* quantities with a small
//! multiplicative guard, and only a *strict* excess stops the scan, so a
//! center that could tie exactly is always evaluated. Every evaluation
//! uses the exact [`squared_euclidean`] loop and the final winner is the
//! minimal distance with the lowest center index — results are
//! bit-identical to the naive first-wins scan, and the evaluation count
//! reported to the §4 cost model is the number of distances actually
//! computed (always in `[1, k]`).

use crate::distance::{nearest_center_flat, squared_euclidean};

/// Multiplicative guard on the stop test: the square roots and squared
/// accumulations involved each carry a relative rounding error of a few
/// ulps, far below 1e-9. Too wide a guard only scans a few extra
/// entries; too narrow a one would silently change an argmin.
const SKIP_GUARD: f64 = 1.0 + 1e-9;

/// Precomputed, distance-sorted inter-center geometry enabling stateless
/// triangle-inequality pruning.
#[derive(Clone, Debug)]
pub struct TrianglePruner {
    k: usize,
    /// Prepass step: every `stride`-th center is evaluated exactly,
    /// giving a near-optimal anchor for ≈`√k` evaluations.
    stride: usize,
    /// Entries per sorted row: the number of non-prepass centers.
    row_len: usize,
    /// One row per prepass anchor `a = i·stride`, holding
    /// `(d²(c_a, c_j), j)` for every *non-prepass* center `j`, sorted
    /// ascending by distance (ties by index). Prepass centers are
    /// excluded because every query evaluates them before the scan.
    rows: Vec<(f64, u32)>,
}

impl TrianglePruner {
    /// Builds the sorted inter-center distance rows for a flat row-major
    /// center buffer. Costs ≈`k^1.5` distance evaluations plus `√k`
    /// sorts of ≈`k` entries, paid once per job rather than per point.
    ///
    /// # Panics
    /// Panics if `centers` is empty, `dim == 0`, or the buffer is ragged.
    pub fn build(centers: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(!centers.is_empty(), "no centers");
        assert_eq!(centers.len() % dim, 0, "ragged center buffer");
        let k = centers.len() / dim;
        let stride = (k as f64).sqrt().round().max(1.0) as usize;
        let n_anchors = k.div_ceil(stride);
        let row_len = k - n_anchors;
        let mut rows = Vec::with_capacity(n_anchors * row_len);
        for a in (0..k).step_by(stride) {
            let ca = &centers[a * dim..(a + 1) * dim];
            let start = rows.len();
            for j in 0..k {
                if j % stride != 0 {
                    let d = squared_euclidean(ca, &centers[j * dim..(j + 1) * dim]);
                    rows.push((d, j as u32));
                }
            }
            rows[start..].sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        Self {
            k,
            stride,
            row_len,
            rows,
        }
    }

    /// Number of centers the pruner was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Nearest center to `point` among the same `centers` the pruner was
    /// built from, returning `(index, squared_distance, evaluations)`.
    ///
    /// The `(index, squared_distance)` pair is bit-identical to
    /// [`nearest_center_flat`];
    /// `evaluations ∈ [1, k]` is the count of exact distance
    /// computations performed, charged to the cost model by callers.
    ///
    /// # Panics
    /// Panics (in debug builds) if `centers` disagrees with the build
    /// buffer's row count.
    pub fn nearest(&self, point: &[f64], centers: &[f64], dim: usize) -> (usize, f64, u64) {
        debug_assert_eq!(centers.len(), self.k * dim, "center buffer mismatch");
        let k = self.k;
        // Prepass: exact evaluation of every `stride`-th center. The
        // centers it covers are exactly those the sorted scan skips, so
        // no center is ever evaluated twice and `evals ≤ k` holds.
        let mut best_idx = 0usize;
        let mut best_d2 = squared_euclidean(point, &centers[..dim]);
        let mut evals = 1u64;
        let mut j = self.stride;
        while j < k {
            let d2 = squared_euclidean(point, &centers[j * dim..(j + 1) * dim]);
            evals += 1;
            if d2 < best_d2 {
                best_idx = j;
                best_d2 = d2;
            }
            j += self.stride;
        }

        // The anchor is fixed for the whole scan; only the radius (and
        // with it the stop threshold) tightens as the best improves.
        let anchor = best_idx;
        let dxa = best_d2.sqrt();
        let mut limit = (dxa + dxa) * SKIP_GUARD;
        let mut limit2 = limit * limit;
        if !limit2.is_finite() {
            // Non-finite coordinates poison the geometry; fall back to
            // the plain scan so the result still matches it exactly.
            let (idx, d2) = nearest_center_flat(point, centers, dim).expect("non-empty centers");
            return (idx, d2, k as u64);
        }

        let row_idx = anchor / self.stride;
        for &(d2_aj, cj) in &self.rows[row_idx * self.row_len..(row_idx + 1) * self.row_len] {
            // Ascending row: the first entry beyond the threshold proves
            // every remaining one is strictly farther than the best.
            if d2_aj > limit2 {
                break;
            }
            let j = cj as usize;
            let d2 = squared_euclidean(point, &centers[j * dim..(j + 1) * dim]);
            evals += 1;
            if d2 < best_d2 || (d2 == best_d2 && j < best_idx) {
                best_idx = j;
                best_d2 = d2;
                limit = (dxa + best_d2.sqrt()) * SKIP_GUARD;
                limit2 = limit * limit;
            }
        }
        (best_idx, best_d2, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_center_flat;
    use proptest::prelude::*;

    #[test]
    fn prunes_far_centers_but_matches_scan() {
        // Two tight groups far apart: points near group A should never
        // evaluate most of group B.
        let dim = 2;
        let mut centers = Vec::new();
        for i in 0..8 {
            centers.extend_from_slice(&[i as f64 * 0.1, 0.0]);
        }
        for i in 0..8 {
            centers.extend_from_slice(&[1000.0 + i as f64 * 0.1, 0.0]);
        }
        let pruner = TrianglePruner::build(&centers, dim);
        let p = [0.35, 0.01];
        let (idx, d2, evals) = pruner.nearest(&p, &centers, dim);
        let (want_idx, want_d2) = nearest_center_flat(&p, &centers, dim).unwrap();
        assert_eq!(idx, want_idx);
        assert_eq!(d2.to_bits(), want_d2.to_bits());
        assert!(evals < 16, "expected pruning, evaluated all {evals}");
        assert!(evals >= 1);
    }

    #[test]
    fn duplicate_centers_tie_keeps_lowest_index() {
        let centers = [2.0, 2.0, 2.0, 2.0, 9.0, 9.0];
        let pruner = TrianglePruner::build(&centers, 2);
        let (idx, _, _) = pruner.nearest(&[2.0, 2.0], &centers, 2);
        assert_eq!(idx, 0);
    }

    #[test]
    fn single_center() {
        let centers = [3.0, -1.0];
        let pruner = TrianglePruner::build(&centers, 2);
        let (idx, d2, evals) = pruner.nearest(&[0.0, 0.0], &centers, 2);
        assert_eq!((idx, evals), (0, 1));
        assert_eq!(d2, 10.0);
    }

    proptest! {
        #[test]
        fn pruned_is_bit_identical_to_scan(
            dim in 1usize..5,
            k in 1usize..40,
            n in 1usize..60,
            seed: u64,
        ) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 50.0
            };
            let centers: Vec<f64> = (0..k * dim).map(|_| next()).collect();
            let pruner = TrianglePruner::build(&centers, dim);
            for _ in 0..n {
                let p: Vec<f64> = (0..dim).map(|_| next()).collect();
                let (idx, d2, evals) = pruner.nearest(&p, &centers, dim);
                let (want_idx, want_d2) = nearest_center_flat(&p, &centers, dim).unwrap();
                prop_assert_eq!(idx, want_idx);
                prop_assert_eq!(d2.to_bits(), want_d2.to_bits());
                prop_assert!(evals >= 1 && evals <= k as u64);
            }
        }

        #[test]
        fn pruned_handles_exact_ties(
            n in 1usize..40,
            seed: u64,
        ) {
            // Grid centers + midpoint points: many exact ties.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 5) as f64
            };
            let centers: Vec<f64> = (0..12).map(|_| next()).collect();
            let pruner = TrianglePruner::build(&centers, 2);
            for _ in 0..n {
                let p = [next() + 0.5, next() + 0.5];
                let (idx, d2, _) = pruner.nearest(&p, &centers, 2);
                let (want_idx, want_d2) = nearest_center_flat(&p, &centers, 2).unwrap();
                prop_assert_eq!(idx, want_idx);
                prop_assert_eq!(d2.to_bits(), want_d2.to_bits());
            }
        }
    }
}
