//! Centroid accumulators: the associative value of the k-means shuffle.
//!
//! The classical MapReduce k-means job emits `(center_id, (coords, 1))`
//! per point; combiners pre-aggregate partial `(sum, count)` pairs and
//! the reducer finalizes `sum / count` as the new center position (paper
//! §3, "classical MapReduce implementation of k-means with combiners").
//! The accumulator must be associative and commutative for combining to
//! be sound; the property tests below pin that down.

use crate::point::Point;

/// A partial sum of points assigned to one cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct CentroidAccumulator {
    sum: Vec<f64>,
    count: u64,
}

impl CentroidAccumulator {
    /// An empty accumulator for points in `R^dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            sum: vec![0.0; dim],
            count: 0,
        }
    }

    /// An accumulator holding a single point.
    pub fn from_point(coords: &[f64]) -> Self {
        Self {
            sum: coords.to_vec(),
            count: 1,
        }
    }

    /// Rebuilds an accumulator from raw parts (used when decoding
    /// combiner output from the shuffle).
    pub fn from_parts(sum: Vec<f64>, count: u64) -> Self {
        Self { sum, count }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Number of points folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Coordinate sums.
    pub fn sum(&self) -> &[f64] {
        &self.sum
    }

    /// Folds one point in.
    ///
    /// # Panics
    /// Panics if the point has the wrong dimension.
    pub fn push(&mut self, coords: &[f64]) {
        assert_eq!(coords.len(), self.sum.len(), "dimension mismatch");
        for (s, c) in self.sum.iter_mut().zip(coords) {
            *s += c;
        }
        self.count += 1;
    }

    /// Merges another accumulator (combiner/reducer fold).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: &CentroidAccumulator) {
        assert_eq!(other.sum.len(), self.sum.len(), "dimension mismatch");
        for (s, o) in self.sum.iter_mut().zip(&other.sum) {
            *s += o;
        }
        self.count += other.count;
    }

    /// Finalizes the mean position, or `None` when no point was folded
    /// in (an empty cluster keeps its previous center upstream).
    pub fn mean(&self) -> Option<Point> {
        if self.count == 0 {
            return None;
        }
        let inv = 1.0 / self.count as f64;
        Some(Point::new(self.sum.iter().map(|s| s * inv).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_two_points() {
        let mut acc = CentroidAccumulator::new(2);
        acc.push(&[0.0, 0.0]);
        acc.push(&[2.0, 4.0]);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean().unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_mean_is_none() {
        assert_eq!(CentroidAccumulator::new(3).mean(), None);
    }

    #[test]
    fn from_point_equals_push() {
        let a = CentroidAccumulator::from_point(&[1.0, 2.0]);
        let mut b = CentroidAccumulator::new(2);
        b.push(&[1.0, 2.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = CentroidAccumulator::from_point(&[1.0]);
        let b = CentroidAccumulator::from_point(&[3.0]);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut a = CentroidAccumulator::new(2);
        a.push(&[1.0]);
    }

    fn acc_of(points: &[Vec<f64>]) -> CentroidAccumulator {
        let mut acc = CentroidAccumulator::new(points.first().map_or(1, |p| p.len()));
        for p in points {
            acc.push(p);
        }
        acc
    }

    proptest! {
        /// Combining partial accumulators must equal accumulating the
        /// concatenated stream — the soundness condition for map-side
        /// combining.
        #[test]
        fn merge_is_associative_and_matches_sequential(
            a in proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, 3), 1..20),
            b in proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, 3), 1..20),
            c in proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, 3), 1..20),
        ) {
            // ((a ∪ b) ∪ c)
            let mut left = acc_of(&a);
            left.merge(&acc_of(&b));
            left.merge(&acc_of(&c));
            // (a ∪ (b ∪ c))
            let mut right_tail = acc_of(&b);
            right_tail.merge(&acc_of(&c));
            let mut right = acc_of(&a);
            right.merge(&right_tail);
            // sequential
            let all: Vec<Vec<f64>> =
                a.iter().chain(&b).chain(&c).cloned().collect();
            let seq = acc_of(&all);

            prop_assert_eq!(left.count(), seq.count());
            prop_assert_eq!(right.count(), seq.count());
            for i in 0..3 {
                prop_assert!((left.sum()[i] - seq.sum()[i]).abs() < 1e-6);
                prop_assert!((right.sum()[i] - seq.sum()[i]).abs() < 1e-6);
            }
        }

        #[test]
        fn mean_is_within_bounding_box(
            pts in proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, 2), 1..50),
        ) {
            let acc = acc_of(&pts);
            let mean = acc.mean().unwrap();
            for d in 0..2 {
                let lo = pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
                let hi = pts.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(mean[d] >= lo - 1e-9 && mean[d] <= hi + 1e-9);
            }
        }
    }
}
