//! Dense vector primitives shared by every crate in the G-means MapReduce
//! reproduction.
//!
//! The paper ("Determining the k in k-means with MapReduce", EDBT 2014)
//! manipulates points in low-dimensional Euclidean space (R² for the
//! illustrations, R¹⁰ for the evaluation). This crate provides the small
//! set of numeric building blocks those algorithms need:
//!
//! * [`Point`] — an owned dense vector with the arithmetic used by Lloyd
//!   iterations (addition, scaling, norms).
//! * [`Dataset`] — a flat, cache-friendly row-major matrix of points, the
//!   in-memory representation used by the serial algorithms and by the
//!   synthetic-data generator.
//! * [`distance`] — squared/plain Euclidean distances and nearest-center
//!   search, the kernel the paper's cost model counts (`O(nk)` distance
//!   computations per k-means iteration).
//! * [`projection`] — projection of a point onto the line joining two
//!   centers, the 1-D reduction at the heart of the G-means split test.
//! * [`stats`] — Welford running mean/variance with a parallel `merge`,
//!   used to normalize projections (zero mean, unit variance) before the
//!   Anderson–Darling test and to aggregate per-cluster statistics in
//!   combiners.
//! * [`centroid`] — sum-and-count accumulators, the associative value the
//!   k-means combiner and reducer fold over.
//! * [`regression`] — ordinary least squares on (x, y) pairs, used to fit
//!   the Figure 2 heap-requirement line (`64·x − 42.67`).
//! * [`kdtree`] — an exact static k-d tree, the mrkd-tree-style
//!   nearest-center acceleration the paper's related work cites as a
//!   drop-in optimization.
//! * [`batch`] — a blocked nearest-center kernel processing tiles of
//!   points × tiles of centers with cached squared norms, bit-identical
//!   to the scalar scan.
//! * [`prune`] — stateless triangle-inequality center pruning from a
//!   per-job inter-center distance matrix.

#![warn(missing_docs)]

pub mod batch;
pub mod centroid;
pub mod distance;
pub mod kdtree;
pub mod point;
pub mod projection;
pub mod prune;
pub mod regression;
pub mod stats;

pub use batch::{nearest_centers_batch, nearest_centers_batch_tiled, squared_norms};
pub use centroid::CentroidAccumulator;
pub use distance::{euclidean, nearest_center, nearest_center_flat, squared_euclidean};
pub use kdtree::{KdQuery, KdTree};
pub use point::{Dataset, Point};
pub use projection::{project_onto_segment, SegmentProjector};
pub use prune::TrianglePruner;
pub use regression::LinearFit;
pub use stats::RunningStats;
