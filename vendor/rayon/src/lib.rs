//! Offline stand-in for the `rayon` crate.
//!
//! Implements the narrow slice of rayon's API this workspace uses —
//! `par_iter()`, `par_chunks()`, `map`, `reduce`, `collect`, `sum` —
//! with *eager* parallelism: `map` materializes its input, splits it
//! into one contiguous chunk per available core, and applies the
//! closure on scoped `std::thread`s. Ordering is preserved, so
//! `collect()` matches the serial result exactly.

/// A materialized "parallel iterator": a vector of items plus the eager
/// parallel combinators applied to them.
pub struct ParIter<T> {
    items: Vec<T>,
}

fn threads_for(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n)
        .max(1)
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return ParIter { items: Vec::new() };
        }
        let threads = threads_for(n);
        if threads == 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let chunk = n.div_ceil(threads);
        let mut inputs: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let part: Vec<T> = it.by_ref().take(chunk).collect();
            if part.is_empty() {
                break;
            }
            inputs.push(part);
        }
        let f = &f;
        let outputs: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .map(|part| scope.spawn(move || part.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        ParIter {
            items: outputs.into_iter().flatten().collect(),
        }
    }

    /// Folds all items into one value; `identity` produces the unit of
    /// `op`, like rayon's `reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Collects the (order-preserved) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Keeps items satisfying the predicate.
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|x| f(x)).collect(),
        }
    }

    /// Runs `f` on every item (parallel side effects).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F)
    where
        T: Send,
    {
        self.map(f).collect::<Vec<()>>();
    }
}

/// `par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Item type yielded by the parallel iterator.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over contiguous chunks.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<i64> = (0..10_000).collect();
        let doubled: Vec<i64> = v.par_iter().map(|x| *x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_reduce_matches_serial() {
        let v: Vec<u64> = (1..=1000).collect();
        let total = v
            .par_chunks(64)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::new();
        let out: Vec<u64> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        assert_eq!(v.into_par_iter().reduce(|| 7, |a, b| a + b), 7);
    }
}
