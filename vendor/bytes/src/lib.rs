//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable
//! reference-counted byte buffer whose clone is a pointer copy.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
