//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the narrow slice of the rand 0.9 API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range sampling
//! via [`Rng::random_range`]. The generator is SplitMix64 — not the
//! upstream ChaCha12, so streams differ from real `rand`, but every use
//! in this workspace only requires *seeded determinism*, which holds:
//! the same seed always yields the same stream, on every platform.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like in upstream `rand`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a type with a standard uniform distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that can be sampled uniformly without extra parameters.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                let v = self.start + u * (self.end - self.start);
                // Guard the (theoretical) rounding case v == end.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let s = rng.random_range(-10i64..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.random_range(0.0..1.0)).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.05, "min {lo} too high");
        assert!(hi > 0.95, "max {hi} too low");
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
