//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's tests use:
//! the [`proptest!`] macro with `name in strategy` and `name: Type`
//! parameters, range/tuple/vec/string strategies, `prop_assert!`-family
//! macros and `prop_assume!`.
//!
//! Unlike upstream proptest there is **no shrinking**: each test runs a
//! fixed number of cases ([`CASES`]) drawn from a generator seeded by a
//! hash of the test's name, so failures are perfectly reproducible from
//! run to run and machine to machine.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of cases each property test runs.
pub const CASES: u32 = 128;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Creates the deterministic per-test generator: seeded by an FNV-1a
/// hash of the test's name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String strategy from a regex literal. Only the universal patterns
/// (`".*"`, `".+"`) are honoured; they produce arbitrary short strings
/// over a mixed ASCII/multi-byte alphabet.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', ',', '.', ';', '-', '_', '"', '\\',
            '/', '{', '}', 'é', 'λ', '中', '🦀', '\u{0}',
        ];
        let min_len = usize::from(self.contains('+'));
        let len = rng.random_range(min_len..32usize);
        (0..len)
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
            .collect()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with a length drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric bit-pattern strategies (`proptest::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::RngCore;

        /// Every `f64` bit pattern: finite values, infinities, NaNs.
        pub struct Any;

        /// The any-bit-pattern strategy, like `proptest::num::f64::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// Types with a canonical "any value" distribution, used for
/// `name: Type` parameters of [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Defines property tests. Each `fn` becomes a `#[test]` running
/// [`CASES`] deterministic cases; parameters are drawn per case either
/// from an explicit strategy (`x in 0.0..1.0f64`) or from the type's
/// [`Arbitrary`] distribution (`x: i64`).
#[macro_export]
macro_rules! proptest {
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, mut $id:ident in $strat:expr) => {
        let mut $id = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident, mut $id:ident in $strat:expr, $($rest:tt)*) => {
        let mut $id = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $id:ident in $strat:expr) => {
        let $id = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $id:ident in $strat:expr, $($rest:tt)*) => {
        let $id = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, mut $id:ident : $ty:ty) => {
        let mut $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, mut $id:ident : $ty:ty, $($rest:tt)*) => {
        let mut $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $id:ident : $ty:ty) => {
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    ($($(#[$attr:meta])* fn $name:ident ($($params:tt)*) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for _case in 0..$crate::CASES {
                    $crate::proptest!(@bind __proptest_rng, $($params)*);
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Strategy,
    };
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0..10.0f64, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0i64..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn exact_vec_length(v in crate::collection::vec(-1.0..1.0f64, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn tuples_and_arbitrary(pair in (0i64..20, 0u64..1000), x: i64) {
            prop_assert!(pair.0 < 20 && pair.1 < 1000);
            let _ = x;
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_strategy_makes_strings(s in ".*") {
            prop_assert!(s.chars().count() < 32);
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
