//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking
//! API (`lock()`/`read()`/`write()` return guards directly, recovering
//! from poisoning instead of returning `Result`s).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
