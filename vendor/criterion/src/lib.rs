//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! measure-and-print harness: a short warm-up, then a timed batch,
//! reporting the mean time per iteration (and throughput when set).
//! There is no statistical analysis or HTML report; the value here is
//! that `cargo bench` compiles and produces comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured quantity per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the measurement for the caller to report.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: a few unrecorded runs.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        // Calibrate the iteration count so the measured batch takes a
        // few milliseconds at least.
        let probe = Instant::now();
        std::hint::black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name:<44} (no measurement)");
        return;
    }
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<44} {time:>12}/iter{rate}  [{} iters]", b.iters);
}

/// The benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of samples; accepted for API compatibility but
    /// ignored (this shim runs each bench body once).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Finishes the group (reporting is immediate; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Re-export used by generated code.
pub use std::hint::black_box;

/// Declares a group of benchmark functions as one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(10), &10usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
