//! Umbrella crate of the reproduction of *"Determining the k in k-means
//! with MapReduce"* (Debatty, Michiardi, Mees, Thonnard — EDBT/ICDT
//! 2014).
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read like downstream code:
//!
//! * [`algorithms`] ([`gmeans`]) — serial and MapReduce G-means,
//!   k-means, multi-k-means, X-means, k-selection criteria, center
//!   merging, evaluation metrics;
//! * [`mapreduce`] ([`gmr_mapreduce`]) — the MapReduce engine (DFS,
//!   jobs, shuffle, counters, simulated cluster & cost model);
//! * [`datagen`] ([`gmr_datagen`]) — seeded Gaussian-mixture workloads;
//! * [`linalg`] ([`gmr_linalg`]) — vector primitives;
//! * [`stats`] ([`gmr_stats`]) — Anderson–Darling, normal
//!   distribution functions, BIC/AIC.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record. The
//! runnable entry points live in `examples/` and in the `repro` binary
//! of the `gmr-bench` crate (one subcommand per table/figure of the
//! paper).

pub use gmeans as algorithms;
pub use gmr_datagen as datagen;
pub use gmr_linalg as linalg;
pub use gmr_mapreduce as mapreduce;
pub use gmr_stats as stats;
